//! The client half: a [`Binding`] over TCP.
//!
//! [`TcpBinding`] plays the role the in-simulation `Gateway` plays for
//! `quorumstore::SimStore`: it owns the connection to a coordinator
//! replica, assigns op ids, matches replies back to pending invocations,
//! and routes each reply into the right [`Upcall`] transition —
//! preliminary flush → `Weak` view, final/single reply → closing view,
//! confirmation → promote the held preliminary (failing the op if the
//! preliminary never arrived, the same fabrication guard the simulated
//! gateway grew in PR 3).
//!
//! Because it implements [`Binding`], an unmodified
//! [`Client`](correctables::Client) — and everything layered on clients:
//! speculation, combinators, the recording layer, the oracle — runs
//! against remote replicas with no code changes.
//!
//! Two I/O engines can carry a binding ([`Transport`]): the epoll
//! reactor (default), where thousands of bindings share the event loops
//! of a process-wide [`ClientReactor`], and the legacy blocking engine,
//! which spends an event-loop thread plus a reader/writer thread pair
//! per binding. The reply-matching state machine
//! (`handle_reply`) is shared verbatim between them.
//!
//! ## Failover
//!
//! The binding takes the full replica address list. When the connection
//! to the current coordinator dies, every in-flight operation fails with
//! [`Error::Unavailable`] (their replies are gone with the socket — the
//! paper's model is failure-aware, not failure-masking), and the next
//! submission dials the next address in the list. Operations submitted
//! after the reconnect run against the new coordinator; any replica of
//! the set can coordinate, so the client keeps operating as long as one
//! replica is reachable.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use correctables::{Binding, ConsistencyLevel, Error, LevelSet, Upcall};
use quorumstore::messages::{Msg, Phase};
use quorumstore::types::{OpId, ReadKind, Version, Versioned};
use quorumstore::StoreOp;
use simnet::NodeId;

use crate::pump::{recv_step, Deadlines, Step};
use crate::reactor::client::{ClientEv, ClientReactor, ReactorBinding};
use crate::transport::{spawn_reader, Outbound, Transport};

/// Configuration of a [`TcpBinding`].
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// The replica set, preferred coordinator first. Failover walks this
    /// list round-robin.
    pub replicas: Vec<SocketAddr>,
    /// This client's id — the client half of every op id it issues.
    /// Must be unique among concurrently connected clients (replica ids
    /// occupy the same space; loadgen offsets client ids past them).
    pub client_id: u64,
    /// Read quorum for strong/final views (the paper's experiments use
    /// `R = 2` of 3).
    pub r_strong: u8,
    /// Enable the *CC confirmation optimization: a final view equal to
    /// the preliminary arrives as a 25-byte confirmation instead of a
    /// full record.
    pub confirm: bool,
    /// Client-side deadline per operation; a lost reply fails the
    /// Correctable with [`Error::Timeout`] instead of wedging it open.
    pub op_timeout: Duration,
    /// Per-address dial timeout during connect and failover.
    pub connect_timeout: Duration,
    /// Which I/O engine carries this binding.
    pub transport: Transport,
}

impl TcpConfig {
    /// A config for `replicas` with the defaults the tests and demo use:
    /// `R = 2`, no confirmation, 2 s op timeout, 1 s connect timeout,
    /// reactor transport.
    pub fn new(replicas: Vec<SocketAddr>, client_id: u64) -> TcpConfig {
        TcpConfig {
            replicas,
            client_id,
            r_strong: 2,
            confirm: false,
            op_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(1),
            transport: Transport::default(),
        }
    }
}

pub(crate) enum Event {
    Submit {
        op: StoreOp,
        kind: ReadKind,
        upcall: Upcall<Versioned>,
        close_level: ConsistencyLevel,
    },
    Reply(Msg),
    /// The connection of generation `gen` died.
    Disconnected {
        gen: u64,
    },
    Shutdown,
}

/// One in-flight operation awaiting its reply, with the views already
/// received that a final reply may fall back to.
pub(crate) struct PendingOp {
    pub(crate) upcall: Upcall<Versioned>,
    pub(crate) close_level: ConsistencyLevel,
    pub(crate) prelim: Option<Versioned>,
    pub(crate) written: Option<Versioned>,
}

/// Builds the wire message for a submitted operation, plus the locally
/// written record a write's final view falls back to.
pub(crate) fn encode_submit(
    client_id: u64,
    seq: u64,
    op: StoreOp,
    kind: ReadKind,
) -> (Msg, Option<Versioned>) {
    let id = OpId {
        client: NodeId(client_id as usize),
        seq,
    };
    match op {
        StoreOp::Read(key) => (Msg::ClientRead { op: id, key, kind }, None),
        StoreOp::Write(key, value) => {
            let written = Versioned {
                value: value.clone(),
                version: Version::ZERO,
            };
            (
                Msg::ClientWrite {
                    op: id,
                    key,
                    value,
                    w: 1,
                },
                Some(written),
            )
        }
    }
}

/// Closes invocation `seq` with `data` (or, absent data, the held
/// preliminary for reads / the written record for writes) — the same
/// resolution order as the simulated gateway. A final reply with *no*
/// view to deliver — no data, no preliminary, no written record — fails
/// the op instead: fabricating an absent view would tell the caller
/// "the key does not exist" with strong confidence the binding never
/// actually obtained (the PR 3 *CC bug class, on a different path).
fn finish(pending: &mut HashMap<u64, PendingOp>, seq: u64, data: Option<Versioned>) {
    let Some(p) = pending.remove(&seq) else {
        return;
    };
    match data.or(p.prelim).or(p.written) {
        Some(value) => p.upcall.deliver(value, p.close_level),
        None => p.upcall.fail(Error::Unavailable(
            "final reply carried no view and none was held".into(),
        )),
    }
}

/// Routes one server reply into the pending-op table: the reply-matching
/// half of the client state machine, shared by both transports.
pub(crate) fn handle_reply(pending: &mut HashMap<u64, PendingOp>, client_id: u64, msg: Msg) {
    let own = |op: OpId| op.client == NodeId(client_id as usize);
    match msg {
        Msg::ReadReply {
            op,
            phase: Phase::Preliminary,
            data,
        } if own(op) => {
            if let Some(p) = pending.get_mut(&op.seq) {
                p.prelim = Some(data.clone());
                let up = p.upcall.clone();
                up.deliver(data, ConsistencyLevel::WEAK);
            }
        }
        Msg::ReadReply { op, data, .. } if own(op) => {
            finish(pending, op.seq, Some(data));
        }
        Msg::ReadConfirm { op, version } if own(op) => {
            // *CC: confirm only against the preliminary we actually
            // hold — never fabricate a strong view from nothing.
            let confirmed = pending
                .get(&op.seq)
                .and_then(|p| p.prelim.clone())
                .filter(|prelim| prelim.version == version);
            match confirmed {
                Some(prelim) => finish(pending, op.seq, Some(prelim)),
                None => {
                    if let Some(p) = pending.remove(&op.seq) {
                        p.upcall.fail(Error::Unavailable(
                            "read confirmation without matching preliminary view".into(),
                        ));
                    }
                }
            }
        }
        Msg::WriteReply { op } if own(op) => finish(pending, op.seq, None),
        Msg::OpFailed { op, .. } if own(op) => {
            if let Some(p) = pending.remove(&op.seq) {
                p.upcall.fail(Error::Timeout);
            }
        }
        // Anything else: not ours, or not client-bound. Drop.
        _ => {}
    }
}

/// Fails every pending operation with `err`.
pub(crate) fn fail_all_pending(pending: &mut HashMap<u64, PendingOp>, err: impl Fn() -> Error) {
    for (_, p) in pending.drain() {
        p.upcall.fail(err());
    }
}

/// Stops the blocking client loop when the last [`TcpBinding`] clone is
/// dropped. The loop itself holds `Sender<Event>` clones (it hands them
/// to every reader thread), so channel disconnection alone would never
/// fire — this explicit shutdown-on-last-drop is what keeps an
/// un-`shutdown` binding from leaking its threads and socket.
struct DropGuard {
    tx: Sender<Event>,
}

impl Drop for DropGuard {
    fn drop(&mut self) {
        let _ = self.tx.send(Event::Shutdown);
    }
}

#[derive(Clone)]
enum BindingInner {
    Blocking {
        tx: Sender<Event>,
        _shutdown_on_last_drop: Arc<DropGuard>,
    },
    Reactor(ReactorBinding),
}

/// A [`Binding`] whose storage stack lives across a TCP connection.
/// Cloning shares the connection and the op-id space.
#[derive(Clone)]
pub struct TcpBinding {
    r_strong: u8,
    confirm: bool,
    /// The address of the coordinator currently (or most recently)
    /// connected, for observability.
    coordinator: Arc<Mutex<SocketAddr>>,
    inner: BindingInner,
}

impl TcpBinding {
    /// Creates the binding and dials the first reachable replica, on
    /// the transport `cfg` selects (reactor bindings share the
    /// process-wide [`ClientReactor`]).
    ///
    /// Fails only if *no* replica in the list accepts a connection; a
    /// partially available set connects to the first live address.
    pub fn connect(cfg: TcpConfig) -> io::Result<TcpBinding> {
        match cfg.transport {
            Transport::Reactor => Self::connect_on(cfg, ClientReactor::global()?),
            Transport::Blocking => Self::connect_blocking(cfg),
        }
    }

    /// Creates a reactor binding on a specific [`ClientReactor`]
    /// (loadgen uses a dedicated reactor sized for its run).
    pub fn connect_on(cfg: TcpConfig, reactor: &ClientReactor) -> io::Result<TcpBinding> {
        // lint: allow(panic_path) — constructor API-misuse check, pre-serving
        assert!(!cfg.replicas.is_empty(), "need at least one replica");
        reactor.register(cfg).map(|(coordinator, rb)| TcpBinding {
            r_strong: rb.r_strong,
            confirm: rb.confirm,
            coordinator,
            inner: BindingInner::Reactor(rb),
        })
    }

    fn connect_blocking(cfg: TcpConfig) -> io::Result<TcpBinding> {
        // lint: allow(panic_path) — constructor API-misuse check, pre-serving
        assert!(!cfg.replicas.is_empty(), "need at least one replica");
        let (tx, rx) = mpsc::channel::<Event>();
        // lint: allow(panic_path) — non-empty asserted above
        let coordinator = Arc::new(Mutex::new(cfg.replicas[0]));
        let mut state = ClientLoop {
            cfg: cfg.clone(),
            tx: tx.clone(),
            conn: None,
            gen: 0,
            addr_idx: 0,
            next_seq: 0,
            pending: HashMap::new(),
            deadlines: Deadlines::new(),
            coordinator: Arc::clone(&coordinator),
            retry_after: None,
        };
        // Dial eagerly so construction surfaces a dead deployment.
        state.ensure_connected().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "no replica in the list accepted a connection",
            )
        })?;
        let client_id = cfg.client_id;
        std::thread::Builder::new()
            .name(format!("icg-client-{client_id}"))
            .spawn(move || state.run(rx))
            // lint: allow(panic_path) — startup, nothing is serving yet
            .expect("spawn client loop");
        Ok(TcpBinding {
            r_strong: cfg.r_strong,
            confirm: cfg.confirm,
            coordinator,
            inner: BindingInner::Blocking {
                tx: tx.clone(),
                _shutdown_on_last_drop: Arc::new(DropGuard { tx }),
            },
        })
    }

    /// The replica this binding is currently coordinated by (the most
    /// recently dialed address after failover).
    pub fn coordinator(&self) -> SocketAddr {
        *self.coordinator.lock()
    }

    /// Disconnects and stops serving this binding. Pending operations
    /// fail with [`Error::Unavailable`]. Idempotent; dropping the last
    /// clone has the same effect.
    pub fn shutdown(&self) {
        match &self.inner {
            BindingInner::Blocking { tx, .. } => {
                let _ = tx.send(Event::Shutdown);
            }
            BindingInner::Reactor(rb) => rb.shutdown(),
        }
    }
}

impl Binding for TcpBinding {
    type Op = StoreOp;
    type Val = Versioned;

    fn consistency_levels(&self) -> LevelSet {
        LevelSet::of(&[ConsistencyLevel::WEAK, ConsistencyLevel::STRONG])
    }

    fn submit(&self, op: StoreOp, levels: &[ConsistencyLevel], upcall: Upcall<Versioned>) {
        // The same level→ReadKind mapping as the simulated QuorumBinding:
        // both ends requested → server-side ICG read; strong only → one
        // quorum read; weak only → one R=1 read.
        let weak = levels.contains(&ConsistencyLevel::WEAK);
        let strong = levels.contains(&ConsistencyLevel::STRONG);
        let kind = match (weak, strong) {
            (true, true) => ReadKind::Icg {
                r: self.r_strong,
                confirm: self.confirm,
            },
            (false, _) => ReadKind::Single { r: self.r_strong },
            (true, false) => ReadKind::Single { r: 1 },
        };
        let close_level = upcall.strongest();
        match &self.inner {
            BindingInner::Blocking { tx, .. } => {
                if tx
                    .send(Event::Submit {
                        op,
                        kind,
                        upcall: upcall.clone(),
                        close_level,
                    })
                    .is_err()
                {
                    // The client loop is gone (shutdown raced the submit).
                    upcall.fail(Error::Unavailable("client connection closed".into()));
                }
            }
            BindingInner::Reactor(rb) => rb.submit(ClientEv::Submit {
                binding: rb.id(),
                op,
                kind,
                upcall,
                close_level,
            }),
        }
    }
}

struct ClientLoop {
    cfg: TcpConfig,
    tx: Sender<Event>,
    conn: Option<Outbound>,
    /// Connection generation: stale `Disconnected` events from an
    /// already-replaced connection are ignored.
    gen: u64,
    addr_idx: usize,
    next_seq: u64,
    pending: HashMap<u64, PendingOp>,
    deadlines: Deadlines<u64>,
    coordinator: Arc<Mutex<SocketAddr>>,
    /// After a dial round finds no replica reachable, don't dial again
    /// until this instant: a burst of queued submits must fail fast
    /// (one `Unavailable` each) instead of each serially paying a full
    /// `replicas × connect_timeout` round on the loop thread.
    retry_after: Option<Instant>,
}

impl ClientLoop {
    /// Returns a live connection, dialing through the replica list (one
    /// full round) if there is none.
    ///
    /// Replacing a dead connection fails every in-flight operation
    /// first: their replies died with the old socket, and a `Submit` can
    /// reach this point before the reader thread's `Disconnected` event
    /// does — waiting for the op deadline instead would stall a closed
    /// loop for the whole timeout.
    fn ensure_connected(&mut self) -> Option<&Outbound> {
        if self.conn.as_ref().is_some_and(|c| !c.is_dead()) {
            // Borrow dance: re-borrow immutably for the return.
            return self.conn.as_ref();
        }
        if self.conn.take().is_some() || !self.pending.is_empty() {
            self.fail_all(|| Error::Unavailable("coordinator connection lost".into()));
        }
        if self.retry_after.is_some_and(|at| Instant::now() < at) {
            return None;
        }
        let n = self.cfg.replicas.len();
        for attempt in 0..n {
            let idx = (self.addr_idx + attempt) % n;
            let Some(addr) = self.cfg.replicas.get(idx).copied() else {
                continue; // n == 0: nothing to dial
            };
            let Ok(stream) = TcpStream::connect_timeout(&addr, self.cfg.connect_timeout) else {
                continue;
            };
            self.gen += 1;
            let gen = self.gen;
            let label = format!("cl{}g{}", self.cfg.client_id, gen);
            let Ok(read_half) = stream.try_clone() else {
                continue;
            };
            let Ok(out) = Outbound::spawn(stream, &label) else {
                continue;
            };
            let reply_tx = self.tx.clone();
            let close_tx = self.tx.clone();
            let spawned = spawn_reader::<Msg, _, _>(
                read_half,
                &label,
                move |msg| {
                    let _ = reply_tx.send(Event::Reply(msg));
                },
                move |_reason| {
                    let _ = close_tx.send(Event::Disconnected { gen });
                },
            );
            if spawned.is_err() {
                out.kill();
                continue; // no reader: replies could never arrive
            }
            self.addr_idx = idx;
            self.retry_after = None;
            *self.coordinator.lock() = addr;
            self.conn = Some(out);
            return self.conn.as_ref();
        }
        // Nothing reachable; start the next round at a different replica,
        // and not before the backoff window passes.
        self.addr_idx = (self.addr_idx + 1) % n;
        self.retry_after = Some(Instant::now() + self.cfg.connect_timeout);
        None
    }

    fn run(mut self, rx: Receiver<Event>) {
        loop {
            let pending = &self.pending;
            let next = self.deadlines.next_live(|seq| pending.contains_key(seq));
            let event = match recv_step(&rx, next) {
                Step::Event(e) => e,
                Step::Expired => {
                    self.fire_expired();
                    continue;
                }
                Step::Closed => break,
            };
            match event {
                Event::Submit {
                    op,
                    kind,
                    upcall,
                    close_level,
                } => self.submit(op, kind, upcall, close_level),
                Event::Reply(msg) => {
                    handle_reply(&mut self.pending, self.cfg.client_id, msg);
                }
                Event::Disconnected { gen } => {
                    if gen == self.gen {
                        self.conn = None;
                        self.fail_all(|| Error::Unavailable("coordinator connection lost".into()));
                        // Prefer a different replica on the next dial.
                        self.addr_idx = (self.addr_idx + 1) % self.cfg.replicas.len();
                    }
                }
                Event::Shutdown => break,
            }
        }
        if let Some(conn) = self.conn.take() {
            conn.kill();
        }
        self.fail_all(|| Error::Unavailable("client shut down".into()));
    }

    fn fire_expired(&mut self) {
        let pending = &mut self.pending;
        self.deadlines.fire_expired(Instant::now(), |seq| {
            if let Some(p) = pending.remove(&seq) {
                p.upcall.fail(Error::Timeout);
            }
        });
    }

    fn fail_all(&mut self, err: impl Fn() -> Error) {
        fail_all_pending(&mut self.pending, err);
        self.deadlines.clear();
    }

    fn submit(
        &mut self,
        op: StoreOp,
        kind: ReadKind,
        upcall: Upcall<Versioned>,
        close_level: ConsistencyLevel,
    ) {
        if self.ensure_connected().is_none() {
            upcall.fail(Error::Unavailable("no replica reachable".into()));
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let (msg, written) = encode_submit(self.cfg.client_id, seq, op, kind);
        self.pending.insert(
            seq,
            PendingOp {
                upcall,
                close_level,
                prelim: None,
                written,
            },
        );
        self.deadlines
            .arm(Instant::now() + self.cfg.op_timeout, seq);
        let sent = self.conn.as_ref().is_some_and(|c| c.send(&msg));
        if !sent {
            if let Some(p) = self.pending.remove(&seq) {
                p.upcall
                    .fail(Error::Unavailable("coordinator connection lost".into()));
            }
        }
    }
}
