//! The quorum-store replica protocol, independent of any transport.
//!
//! [`ReplicaCore`] is the replica's entire protocol brain: the storage
//! map, the pending read/write tables, internal op-id minting, and the
//! operation-deadline heap. It never touches a socket — every outbound
//! message goes through the [`Egress`] trait, which the blocking
//! transport implements over [`crate::transport::Outbound`] handles and
//! the reactor implements over its event-loop connection table. Both
//! transports therefore run byte-for-byte the same protocol; a
//! semantics bug cannot exist in one and not the other.
//!
//! The protocol itself is documented in [`crate::server`]: simulated
//! [`quorumstore::Replica`] semantics (preliminary flush, confirmation,
//! LWW adoption) with the one divergence that peer reads fan out to
//! *all* peers and complete at the first `R-1` responses.

use std::collections::HashMap;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use quorumstore::messages::{FailReason, Msg, Phase};
use quorumstore::storage::LocalStore;
use quorumstore::types::{Key, OpId, ReadKind, Value, Version, Versioned};
use simnet::NodeId;

use crate::pump::Deadlines;

/// Where a replica's outbound messages go. The core never sees sockets;
/// each transport maps these two calls onto its own connection plumbing.
pub(crate) trait Egress {
    /// Sends `msg` on client connection `conn`. A connection that no
    /// longer exists drops the message silently (the client is gone;
    /// its ops die by timeout on the client side).
    fn to_client(&mut self, conn: u64, msg: &Msg);

    /// Sends `msg` down every currently-live peer link.
    fn to_peers(&mut self, msg: &Msg);
}

struct ReadSt {
    client_conn: u64,
    client_op: OpId,
    kind: ReadKind,
    key: Key,
    best: Versioned,
    responses: u8,
    needed: u8,
    prelim: Option<Version>,
}

struct WriteSt {
    client_conn: u64,
    client_op: OpId,
    acks_left: u8,
}

/// Transport-agnostic replica protocol state. One instance per replica,
/// owned by exactly one event-loop thread (blocking or reactor).
pub(crate) struct ReplicaCore {
    /// This replica's id (LWW writer tiebreak + internal op-id client).
    id: u32,
    /// Deadline for gathering quorums before failing an op.
    op_timeout: Duration,
    /// Number of configured peers — *configured*, not currently live:
    /// quorum arithmetic must not shrink when a link flaps.
    n_peers: usize,
    store: LocalStore,
    reads: HashMap<u64, ReadSt>,
    writes: HashMap<u64, WriteSt>,
    /// Monotone source of internal op ids.
    next_internal: u64,
    /// Operation deadlines, soonest first.
    deadlines: Deadlines<u64>,
}

impl ReplicaCore {
    pub(crate) fn new(id: u32, op_timeout: Duration, n_peers: usize) -> ReplicaCore {
        ReplicaCore {
            id,
            op_timeout,
            n_peers,
            store: LocalStore::new(),
            reads: HashMap::new(),
            writes: HashMap::new(),
            next_internal: 0,
            deadlines: Deadlines::new(),
        }
    }

    /// The soonest live operation deadline, for the transport's wait.
    pub(crate) fn next_deadline(&mut self) -> Option<Instant> {
        let reads = &self.reads;
        let writes = &self.writes;
        self.deadlines
            .next_live(|internal| reads.contains_key(internal) || writes.contains_key(internal))
    }

    /// Fails every operation whose deadline has passed.
    pub(crate) fn fire_expired(&mut self, net: &mut impl Egress) {
        let mut failed = Vec::new();
        let reads = &mut self.reads;
        let writes = &mut self.writes;
        self.deadlines.fire_expired(Instant::now(), |internal| {
            let hit = reads
                .remove(&internal)
                .map(|st| (st.client_conn, st.client_op))
                .or_else(|| {
                    writes
                        .remove(&internal)
                        .map(|st| (st.client_conn, st.client_op))
                });
            failed.extend(hit);
        });
        for (conn, op) in failed {
            net.to_client(
                conn,
                &Msg::OpFailed {
                    op,
                    reason: FailReason::Timeout,
                },
            );
        }
    }

    fn now_version(&self) -> Version {
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Version {
            ts,
            writer: self.id,
        }
    }

    fn mint_internal(&mut self) -> (u64, OpId) {
        let internal = self.next_internal;
        self.next_internal += 1;
        // Peer traffic op ids: this replica's id in the client slot, the
        // internal counter in the sequence slot. Unique per coordinator,
        // and coordinators' ids are unique per deployment.
        (
            internal,
            OpId {
                client: NodeId(self.id as usize),
                seq: internal,
            },
        )
    }

    fn arm(&mut self, internal: u64) {
        self.deadlines
            .arm(Instant::now() + self.op_timeout, internal);
    }

    /// Dispatches one inbound message from connection `conn`.
    pub(crate) fn on_msg(&mut self, net: &mut impl Egress, conn: u64, msg: Msg) {
        match msg {
            Msg::ClientRead { op, key, kind } => self.client_read(net, conn, op, key, kind),
            Msg::ClientWrite { op, key, value, w } => {
                self.client_write(net, conn, op, key, value, w)
            }
            Msg::PeerRead { op, key } => {
                let data = self.store.get(key);
                net.to_client(conn, &Msg::PeerReadResp { op, data });
            }
            Msg::PeerReadResp { op, data } => self.peer_read_resp(net, op, data),
            Msg::PeerWrite { key, data, ack_op } => {
                self.store.apply(key, data);
                if let Some(op) = ack_op {
                    net.to_client(conn, &Msg::PeerWriteAck { op });
                }
            }
            Msg::PeerWriteAck { op } => self.peer_write_ack(net, op),
            // Client-bound replies have no business arriving at a server;
            // drop them (a confused or hostile peer must not crash us).
            Msg::ReadReply { .. }
            | Msg::ReadConfirm { .. }
            | Msg::WriteReply { .. }
            | Msg::OpFailed { .. } => {}
        }
    }

    fn client_read(
        &mut self,
        net: &mut impl Egress,
        conn: u64,
        client_op: OpId,
        key: Key,
        kind: ReadKind,
    ) {
        let local = self.store.get(key);
        let n_replicas = (self.n_peers + 1) as u8;
        let needed = kind.quorum().clamp(1, n_replicas);

        let mut prelim = None;
        if kind.is_icg() {
            // Preliminary flush: leak local state before coordinating.
            prelim = Some(local.version);
            net.to_client(
                conn,
                &Msg::ReadReply {
                    op: client_op,
                    phase: Phase::Preliminary,
                    data: local.clone(),
                },
            );
        }

        if needed <= 1 {
            self.reply_read_final(net, conn, client_op, kind, prelim, local);
            return;
        }

        let (internal, peer_op) = self.mint_internal();
        // Fan out to every peer and complete at the first R-1 responses —
        // availability under a dead replica (see the module docs). Even
        // when too few links are currently live to ever reach the
        // quorum, the op stays pending: a peer may come back within the
        // timeout, and the deadline converts it into OpFailed otherwise.
        net.to_peers(&Msg::PeerRead { op: peer_op, key });
        self.reads.insert(
            internal,
            ReadSt {
                client_conn: conn,
                client_op,
                kind,
                key,
                best: local,
                responses: 1,
                needed,
                prelim,
            },
        );
        self.arm(internal);
    }

    fn reply_read_final(
        &mut self,
        net: &mut impl Egress,
        conn: u64,
        op: OpId,
        kind: ReadKind,
        prelim: Option<Version>,
        best: Versioned,
    ) {
        let msg = match kind {
            ReadKind::Icg { confirm: true, .. } if prelim == Some(best.version) => {
                Msg::ReadConfirm {
                    op,
                    version: best.version,
                }
            }
            ReadKind::Icg { .. } => Msg::ReadReply {
                op,
                phase: Phase::Final,
                data: best,
            },
            ReadKind::Single { .. } => Msg::ReadReply {
                op,
                phase: Phase::Single,
                data: best,
            },
        };
        net.to_client(conn, &msg);
    }

    fn peer_read_resp(&mut self, net: &mut impl Egress, peer_op: OpId, data: Versioned) {
        // Only answers to our own requests are meaningful.
        if peer_op.client != NodeId(self.id as usize) {
            return;
        }
        let internal = peer_op.seq;
        let Some(st) = self.reads.get_mut(&internal) else {
            return; // late response after completion or timeout
        };
        st.responses += 1;
        if data.version > st.best.version {
            st.best = data;
        }
        if st.responses < st.needed {
            return;
        }
        let Some(st) = self.reads.remove(&internal) else {
            return;
        };
        // Adopt the winning version locally: later preliminary
        // flushes serve it, and convergence after quiescence holds
        // even if this coordinator missed the original write.
        if st.best.version > self.store.version_of(st.key) {
            self.store.apply(st.key, st.best.clone());
        }
        self.reply_read_final(
            net,
            st.client_conn,
            st.client_op,
            st.kind,
            st.prelim,
            st.best,
        );
    }

    fn client_write(
        &mut self,
        net: &mut impl Egress,
        conn: u64,
        client_op: OpId,
        key: Key,
        value: Value,
        w: u8,
    ) {
        let data = Versioned {
            value,
            version: self.now_version(),
        };
        self.store.apply(key, data.clone());
        let acks_needed = w.saturating_sub(1).min(self.n_peers as u8);
        if acks_needed == 0 {
            // W = 1 (the paper's setting): acknowledge immediately,
            // propagate in the background.
            net.to_peers(&Msg::PeerWrite {
                key,
                data,
                ack_op: None,
            });
            net.to_client(conn, &Msg::WriteReply { op: client_op });
            return;
        }
        let (internal, peer_op) = self.mint_internal();
        net.to_peers(&Msg::PeerWrite {
            key,
            data,
            ack_op: Some(peer_op),
        });
        self.writes.insert(
            internal,
            WriteSt {
                client_conn: conn,
                client_op,
                acks_left: acks_needed,
            },
        );
        self.arm(internal);
    }

    fn peer_write_ack(&mut self, net: &mut impl Egress, peer_op: OpId) {
        if peer_op.client != NodeId(self.id as usize) {
            return;
        }
        let internal = peer_op.seq;
        let finished = match self.writes.get_mut(&internal) {
            Some(st) => {
                st.acks_left = st.acks_left.saturating_sub(1);
                st.acks_left == 0
            }
            None => false,
        };
        if finished {
            if let Some(st) = self.writes.remove(&internal) {
                net.to_client(st.client_conn, &Msg::WriteReply { op: st.client_op });
            }
        }
    }
}
