//! The quorum-store replica protocol, independent of any transport.
//!
//! [`ReplicaCore`] is the replica's entire protocol brain: the storage
//! map, the pending read/write tables, internal op-id minting, and the
//! operation-deadline heap. It never touches a socket — every outbound
//! message goes through the [`Egress`] trait, which the blocking
//! transport implements over [`crate::transport::Outbound`] handles and
//! the reactor implements over its event-loop connection table. Both
//! transports therefore run byte-for-byte the same protocol; a
//! semantics bug cannot exist in one and not the other.
//!
//! The protocol itself is documented in [`crate::server`]: simulated
//! [`quorumstore::Replica`] semantics (preliminary flush, confirmation,
//! LWW adoption) with the one divergence that peer reads fan out to
//! *all* peers and complete at the first `R-1` responses.

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use correctables::spec::{CounterSpec, RegisterSpec, SeqSpec};
use correctables::ConsistencyLevel;
use quorumstore::messages::{FailReason, Msg, Phase};
use quorumstore::storage::LocalStore;
use quorumstore::types::{Key, OpId, ReadKind, Value, Version, Versioned};
use simnet::NodeId;

use crate::pump::Deadlines;
use crate::wire::{LevelInfo, NetMsg, SpecOp, MAX_LEVELS, WIRE_VERSION};

/// Where a replica's outbound messages go. The core never sees sockets;
/// each transport maps these two calls onto its own connection plumbing.
pub(crate) trait Egress {
    /// Sends `msg` on client connection `conn`. A connection that no
    /// longer exists drops the message silently (the client is gone;
    /// its ops die by timeout on the client side).
    fn to_client(&mut self, conn: u64, msg: &NetMsg);

    /// Sends `msg` down every currently-live peer link.
    fn to_peers(&mut self, msg: &NetMsg);

    /// Convenience: wraps a version-1 store message for `to_client`.
    fn store_to_client(&mut self, conn: u64, msg: Msg) {
        self.to_client(conn, &NetMsg::Store(msg));
    }

    /// Convenience: wraps a version-1 store message for `to_peers`.
    fn store_to_peers(&mut self, msg: Msg) {
        self.to_peers(&NetMsg::Store(msg));
    }
}

struct ReadSt {
    client_conn: u64,
    client_op: OpId,
    kind: ReadKind,
    key: Key,
    best: Versioned,
    responses: u8,
    needed: u8,
    prelim: Option<Version>,
}

struct WriteSt {
    client_conn: u64,
    client_op: OpId,
    acks_left: u8,
}

/// Transport-agnostic replica protocol state. One instance per replica,
/// owned by exactly one event-loop thread (blocking or reactor).
pub(crate) struct ReplicaCore {
    /// This replica's id (LWW writer tiebreak + internal op-id client).
    id: u32,
    /// Deadline for gathering quorums before failing an op.
    op_timeout: Duration,
    /// Number of configured peers — *configured*, not currently live:
    /// quorum arithmetic must not shrink when a link flaps.
    n_peers: usize,
    store: LocalStore,
    reads: HashMap<u64, ReadSt>,
    writes: HashMap<u64, WriteSt>,
    /// Monotone source of internal op ids.
    next_internal: u64,
    /// Operation deadlines, soonest first.
    deadlines: Deadlines<u64>,
    /// The update/causal/strong spec store riding the same connections.
    spec: SpecCore,
}

impl ReplicaCore {
    pub(crate) fn new(id: u32, op_timeout: Duration, n_peers: usize) -> ReplicaCore {
        ReplicaCore {
            id,
            op_timeout,
            n_peers,
            store: LocalStore::new(),
            reads: HashMap::new(),
            writes: HashMap::new(),
            next_internal: 0,
            deadlines: Deadlines::new(),
            spec: SpecCore::new(id, n_peers + 1),
        }
    }

    /// Dispatches one inbound envelope from connection `conn` — the
    /// version-1 store subset into [`ReplicaCore::on_msg`], the
    /// version-2 handshake and spec-store messages into [`SpecCore`].
    pub(crate) fn on_net(&mut self, net: &mut impl Egress, conn: u64, msg: NetMsg) {
        match msg {
            NetMsg::Store(m) => self.on_msg(net, conn, m),
            NetMsg::Hello { .. } => {
                let levels = self.spec.level_directory();
                net.to_client(
                    conn,
                    &NetMsg::HelloAck {
                        version: WIRE_VERSION,
                        levels,
                    },
                );
            }
            NetMsg::SpecSubmit {
                client,
                seq,
                op,
                wants,
            } => self.spec.submit(net, conn, client, seq, op, &wants),
            NetMsg::SpecGossip {
                origin,
                seq,
                ts,
                vc,
                op,
            } => self.spec.on_gossip(
                net,
                SpecUpdate {
                    ts,
                    origin,
                    seq,
                    vc,
                    op,
                },
            ),
            NetMsg::SpecAck {
                origin,
                seq,
                acker,
                acker_seq,
            } => self.spec.on_ack(net, origin, seq, acker, acker_seq),
            // Client-bound replies have no business arriving at a
            // server; drop them (a confused or hostile peer must not
            // crash us).
            NetMsg::HelloAck { .. } | NetMsg::SpecReply { .. } | NetMsg::SpecFailed { .. } => {}
        }
    }

    /// A peer link (re)connected: give the spec store a chance to
    /// retransmit updates the peer may have missed while down.
    pub(crate) fn on_peer_up(&mut self, net: &mut impl Egress) {
        self.spec.retransmit(net);
    }

    /// The soonest live operation deadline, for the transport's wait.
    pub(crate) fn next_deadline(&mut self) -> Option<Instant> {
        let reads = &self.reads;
        let writes = &self.writes;
        self.deadlines
            .next_live(|internal| reads.contains_key(internal) || writes.contains_key(internal))
    }

    /// Fails every operation whose deadline has passed.
    pub(crate) fn fire_expired(&mut self, net: &mut impl Egress) {
        let mut failed = Vec::new();
        let reads = &mut self.reads;
        let writes = &mut self.writes;
        self.deadlines.fire_expired(Instant::now(), |internal| {
            let hit = reads
                .remove(&internal)
                .map(|st| (st.client_conn, st.client_op))
                .or_else(|| {
                    writes
                        .remove(&internal)
                        .map(|st| (st.client_conn, st.client_op))
                });
            failed.extend(hit);
        });
        for (conn, op) in failed {
            net.store_to_client(
                conn,
                Msg::OpFailed {
                    op,
                    reason: FailReason::Timeout,
                },
            );
        }
    }

    fn now_version(&self) -> Version {
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Version {
            ts,
            writer: self.id,
        }
    }

    fn mint_internal(&mut self) -> (u64, OpId) {
        let internal = self.next_internal;
        self.next_internal += 1;
        // Peer traffic op ids: this replica's id in the client slot, the
        // internal counter in the sequence slot. Unique per coordinator,
        // and coordinators' ids are unique per deployment.
        (
            internal,
            OpId {
                client: NodeId(self.id as usize),
                seq: internal,
            },
        )
    }

    fn arm(&mut self, internal: u64) {
        self.deadlines
            .arm(Instant::now() + self.op_timeout, internal);
    }

    /// Dispatches one inbound message from connection `conn`.
    pub(crate) fn on_msg(&mut self, net: &mut impl Egress, conn: u64, msg: Msg) {
        match msg {
            Msg::ClientRead { op, key, kind } => self.client_read(net, conn, op, key, kind),
            Msg::ClientWrite { op, key, value, w } => {
                self.client_write(net, conn, op, key, value, w)
            }
            Msg::PeerRead { op, key } => {
                let data = self.store.get(key);
                net.store_to_client(conn, Msg::PeerReadResp { op, data });
            }
            Msg::PeerReadResp { op, data } => self.peer_read_resp(net, op, data),
            Msg::PeerWrite { key, data, ack_op } => {
                self.store.apply(key, data);
                if let Some(op) = ack_op {
                    net.store_to_client(conn, Msg::PeerWriteAck { op });
                }
            }
            Msg::PeerWriteAck { op } => self.peer_write_ack(net, op),
            // Client-bound replies have no business arriving at a server;
            // drop them (a confused or hostile peer must not crash us).
            Msg::ReadReply { .. }
            | Msg::ReadConfirm { .. }
            | Msg::WriteReply { .. }
            | Msg::OpFailed { .. } => {}
        }
    }

    fn client_read(
        &mut self,
        net: &mut impl Egress,
        conn: u64,
        client_op: OpId,
        key: Key,
        kind: ReadKind,
    ) {
        let local = self.store.get(key);
        let n_replicas = (self.n_peers + 1) as u8;
        let needed = kind.quorum().clamp(1, n_replicas);

        let mut prelim = None;
        if kind.is_icg() {
            // Preliminary flush: leak local state before coordinating.
            prelim = Some(local.version);
            net.store_to_client(
                conn,
                Msg::ReadReply {
                    op: client_op,
                    phase: Phase::Preliminary,
                    data: local.clone(),
                },
            );
        }

        if needed <= 1 {
            self.reply_read_final(net, conn, client_op, kind, prelim, local);
            return;
        }

        let (internal, peer_op) = self.mint_internal();
        // Fan out to every peer and complete at the first R-1 responses —
        // availability under a dead replica (see the module docs). Even
        // when too few links are currently live to ever reach the
        // quorum, the op stays pending: a peer may come back within the
        // timeout, and the deadline converts it into OpFailed otherwise.
        net.store_to_peers(Msg::PeerRead { op: peer_op, key });
        self.reads.insert(
            internal,
            ReadSt {
                client_conn: conn,
                client_op,
                kind,
                key,
                best: local,
                responses: 1,
                needed,
                prelim,
            },
        );
        self.arm(internal);
    }

    fn reply_read_final(
        &mut self,
        net: &mut impl Egress,
        conn: u64,
        op: OpId,
        kind: ReadKind,
        prelim: Option<Version>,
        best: Versioned,
    ) {
        let msg = match kind {
            ReadKind::Icg { confirm: true, .. } if prelim == Some(best.version) => {
                Msg::ReadConfirm {
                    op,
                    version: best.version,
                }
            }
            ReadKind::Icg { .. } => Msg::ReadReply {
                op,
                phase: Phase::Final,
                data: best,
            },
            ReadKind::Single { .. } => Msg::ReadReply {
                op,
                phase: Phase::Single,
                data: best,
            },
        };
        net.store_to_client(conn, msg);
    }

    fn peer_read_resp(&mut self, net: &mut impl Egress, peer_op: OpId, data: Versioned) {
        // Only answers to our own requests are meaningful.
        if peer_op.client != NodeId(self.id as usize) {
            return;
        }
        let internal = peer_op.seq;
        let Some(st) = self.reads.get_mut(&internal) else {
            return; // late response after completion or timeout
        };
        st.responses += 1;
        if data.version > st.best.version {
            st.best = data;
        }
        if st.responses < st.needed {
            return;
        }
        let Some(st) = self.reads.remove(&internal) else {
            return;
        };
        // Adopt the winning version locally: later preliminary
        // flushes serve it, and convergence after quiescence holds
        // even if this coordinator missed the original write.
        if st.best.version > self.store.version_of(st.key) {
            self.store.apply(st.key, st.best.clone());
        }
        self.reply_read_final(
            net,
            st.client_conn,
            st.client_op,
            st.kind,
            st.prelim,
            st.best,
        );
    }

    fn client_write(
        &mut self,
        net: &mut impl Egress,
        conn: u64,
        client_op: OpId,
        key: Key,
        value: Value,
        w: u8,
    ) {
        let data = Versioned {
            value,
            version: self.now_version(),
        };
        self.store.apply(key, data.clone());
        let acks_needed = w.saturating_sub(1).min(self.n_peers as u8);
        if acks_needed == 0 {
            // W = 1 (the paper's setting): acknowledge immediately,
            // propagate in the background.
            net.store_to_peers(Msg::PeerWrite {
                key,
                data,
                ack_op: None,
            });
            net.store_to_client(conn, Msg::WriteReply { op: client_op });
            return;
        }
        let (internal, peer_op) = self.mint_internal();
        net.store_to_peers(Msg::PeerWrite {
            key,
            data,
            ack_op: Some(peer_op),
        });
        self.writes.insert(
            internal,
            WriteSt {
                client_conn: conn,
                client_op,
                acks_left: acks_needed,
            },
        );
        self.arm(internal);
    }

    fn peer_write_ack(&mut self, net: &mut impl Egress, peer_op: OpId) {
        if peer_op.client != NodeId(self.id as usize) {
            return;
        }
        let internal = peer_op.seq;
        let finished = match self.writes.get_mut(&internal) {
            Some(st) => {
                st.acks_left = st.acks_left.saturating_sub(1);
                st.acks_left == 0
            }
            None => false,
        };
        if finished {
            if let Some(st) = self.writes.remove(&internal) {
                net.store_to_client(st.client_conn, Msg::WriteReply { op: st.client_op });
            }
        }
    }
}

/// One replicated spec-store update: the unit of the gossip protocol
/// and of the agreed `(ts, origin, seq)` total order.
pub(crate) struct SpecUpdate {
    ts: u64,
    origin: u32,
    seq: u64,
    vc: Vec<u64>,
    op: SpecOp,
}

impl SpecUpdate {
    fn order_key(&self) -> (u64, u32, u64) {
        (self.ts, self.origin, self.seq)
    }
}

/// Which of the four served levels a submission asked for.
#[derive(Clone, Copy)]
struct SpecWants {
    weak: bool,
    update: bool,
    causal: bool,
    strong: bool,
}

/// An own update still owed views or acks.
struct SpecPending {
    conn: u64,
    client: u64,
    client_seq: u64,
    key: (u64, u32, u64),
    wants: SpecWants,
    /// Per-replica causal-delivery acks (own entry pre-set).
    acked: Vec<bool>,
    /// Per-replica submission counts reported with each ack; a strong
    /// view additionally waits until these are delivered locally.
    acker_seq: Vec<u64>,
    causal_sent: bool,
    strong_sent: bool,
}

impl SpecPending {
    fn fully_acked(&self) -> bool {
        self.acked.iter().all(|a| *a)
    }

    fn served(&self) -> bool {
        (!self.wants.causal || self.causal_sent) && (!self.wants.strong || self.strong_sent)
    }
}

/// The TCP-side spec store: the update-consistency / causal / strong
/// machinery of `specstore::SpecReplica`, ported onto real peer links.
///
/// Every replica keeps a totally-ordered update log (lamport `(ts,
/// origin, seq)` order), a vector clock gating causal delivery (CBCAST
/// buffering), and — for its *own* updates — per-peer delivery acks.
/// The four views a submission can ask for:
///
/// - **weak** — the op applied on top of the local replay, replied
///   before any coordination;
/// - **update** — the op's return in the agreed total order as
///   currently known locally (wait-free; the order is what all
///   replicas converge to);
/// - **causal** — replied once at least one peer confirmed causal
///   delivery (evidence the update propagated with its causal past);
/// - **strong** — replied once *every* replica delivered the update
///   **and** everything those replicas had themselves submitted by
///   their ack is delivered here, so the op's position in the total
///   order can no longer change (stability, not just receipt).
///
/// Anti-entropy is connection-driven rather than timer-driven: peer
/// links re-gossip all not-fully-acked own updates whenever a link
/// comes (back) up, and a replica re-acks retransmissions of updates it
/// already delivered — so a flapping link cannot wedge a strong view
/// open, and no timers race the event loop.
///
/// Replica ids double as vector-clock indexes, so a spec deployment
/// requires ids `0..n` — exactly what [`crate::spawn_local_cluster`]
/// assigns. Gossip from an out-of-range origin is dropped.
pub(crate) struct SpecCore {
    id: u32,
    n: usize,
    lamport: u64,
    /// Own submissions so far (1-based seq of the next own update).
    next_seq: u64,
    /// Deliveries per origin; own entry counts own submissions.
    vc: Vec<u64>,
    /// Causally delivered updates, sorted by `(ts, origin, seq)`.
    log: Vec<SpecUpdate>,
    /// Received but not yet causally deliverable.
    buffer: Vec<SpecUpdate>,
    /// Own updates awaiting views or acks, by own seq.
    pending: HashMap<u64, SpecPending>,
    reg: RegisterSpec,
    ctr: CounterSpec,
}

impl SpecCore {
    fn new(id: u32, n: usize) -> SpecCore {
        SpecCore {
            id,
            n,
            lamport: 0,
            next_seq: 0,
            vc: vec![0; n],
            log: Vec::new(),
            buffer: Vec::new(),
            pending: HashMap::new(),
            reg: RegisterSpec::default(),
            ctr: CounterSpec,
        }
    }

    /// The level directory advertised in the handshake: every level
    /// registered in this process, truncated at the wire bound.
    fn level_directory(&self) -> Vec<LevelInfo> {
        ConsistencyLevel::all_registered()
            .into_iter()
            .take(MAX_LEVELS as usize)
            .map(|l| LevelInfo {
                id: l.wire_id(),
                rank: l.rank(),
                name: l.name().to_string(),
            })
            .collect()
    }

    /// Resolves requested level ids against the four levels this store
    /// implements. `None` means the submission asked for a level the
    /// store cannot honestly serve — the caller replies `SpecFailed`
    /// rather than delivering a weaker guarantee under a stronger name.
    fn resolve_wants(wants: &[u8]) -> Option<SpecWants> {
        let mut w = SpecWants {
            weak: false,
            update: false,
            causal: false,
            strong: false,
        };
        for &id in wants {
            let level = ConsistencyLevel::from_wire_id(id)?;
            if level == ConsistencyLevel::WEAK {
                w.weak = true;
            } else if level == ConsistencyLevel::UPDATE {
                w.update = true;
            } else if level == ConsistencyLevel::CAUSAL {
                w.causal = true;
            } else if level == ConsistencyLevel::STRONG {
                w.strong = true;
            } else {
                return None;
            }
        }
        (w.weak || w.update || w.causal || w.strong).then_some(w)
    }

    /// Applies one op to the running two-spec state, returning the
    /// op's value.
    fn apply(
        &self,
        regs: &mut BTreeMap<u64, u64>,
        ctrs: &mut BTreeMap<u64, u64>,
        op: &SpecOp,
    ) -> u64 {
        match op {
            SpecOp::Reg(op) => {
                let (next, ret) = self.reg.apply(regs, op);
                *regs = next;
                ret
            }
            SpecOp::Ctr(op) => {
                let (next, ret) = self.ctr.apply(ctrs, op);
                *ctrs = next;
                ret
            }
        }
    }

    /// Replays the log in the agreed order and returns the value of the
    /// update at `key` (or, with `key` absent from the log, of `extra`
    /// applied on top — the weak pre-stamp view).
    fn replay(&self, key: (u64, u32, u64), extra: Option<&SpecOp>) -> u64 {
        let mut regs = BTreeMap::new();
        let mut ctrs = BTreeMap::new();
        for u in &self.log {
            let ret = self.apply(&mut regs, &mut ctrs, &u.op);
            if u.order_key() == key {
                return ret;
            }
        }
        match extra {
            Some(op) => self.apply(&mut regs, &mut ctrs, op),
            None => 0,
        }
    }

    fn insert_sorted(&mut self, u: SpecUpdate) {
        let at = self
            .log
            .partition_point(|have| have.order_key() < u.order_key());
        self.log.insert(at, u);
    }

    fn reply(
        &self,
        net: &mut impl Egress,
        p: &SpecPending,
        level: ConsistencyLevel,
        val: u64,
        closing: bool,
    ) {
        net.to_client(
            p.conn,
            &NetMsg::SpecReply {
                client: p.client,
                seq: p.client_seq,
                level: level.wire_id(),
                val,
                closing,
            },
        );
    }

    /// One client submission: weak view immediately, then the update
    /// enters the replicated log and the stronger views follow the
    /// protocol (see the type docs).
    fn submit(
        &mut self,
        net: &mut impl Egress,
        conn: u64,
        client: u64,
        client_seq: u64,
        op: SpecOp,
        wants: &[u8],
    ) {
        let Some(w) = Self::resolve_wants(wants) else {
            net.to_client(
                conn,
                &NetMsg::SpecFailed {
                    client,
                    seq: client_seq,
                },
            );
            return;
        };
        // Weak: the op on top of the local replay, before any ordering.
        // Even when weak is the *only* requested level the update still
        // enters the replicated log below — only the client's view is
        // weak, never the store's state.
        if w.weak {
            let val = self.replay((u64::MAX, u32::MAX, u64::MAX), Some(&op));
            let closing = !(w.update || w.causal || w.strong);
            net.to_client(
                conn,
                &NetMsg::SpecReply {
                    client,
                    seq: client_seq,
                    level: ConsistencyLevel::WEAK.wire_id(),
                    val,
                    closing,
                },
            );
        }

        // Stamp and deliver locally.
        self.lamport += 1;
        self.next_seq += 1;
        let seq = self.next_seq;
        if let Some(slot) = self.vc.get_mut(self.id as usize) {
            *slot = seq;
        }
        let u = SpecUpdate {
            ts: self.lamport,
            origin: self.id,
            seq,
            vc: self.vc.clone(),
            op,
        };
        let key = u.order_key();
        net.to_peers(&NetMsg::SpecGossip {
            origin: u.origin,
            seq: u.seq,
            ts: u.ts,
            vc: u.vc.clone(),
            op: u.op.clone(),
        });
        self.insert_sorted(u);

        let mut acked = vec![false; self.n];
        let mut acker_seq = vec![0; self.n];
        if let Some(slot) = acked.get_mut(self.id as usize) {
            *slot = true;
        }
        if let Some(slot) = acker_seq.get_mut(self.id as usize) {
            *slot = seq;
        }
        let p = SpecPending {
            conn,
            client,
            client_seq,
            key,
            wants: w,
            acked,
            acker_seq,
            causal_sent: false,
            strong_sent: false,
        };
        if w.update {
            let val = self.replay(key, None);
            let closing = !(w.causal || w.strong);
            self.reply(net, &p, ConsistencyLevel::UPDATE, val, closing);
        }
        // Track every own update until fully acked — even one whose
        // client is already served: peers that missed the gossip can
        // only be healed by the retransmit path, and a permanently
        // missing seq would wedge their vector clocks forever.
        self.pending.insert(seq, p);
        self.settle(net);
    }

    /// One gossiped update from a peer: re-ack retransmissions of
    /// already-delivered updates, buffer the rest, deliver causally.
    fn on_gossip(&mut self, net: &mut impl Egress, u: SpecUpdate) {
        if u.origin as usize >= self.n || u.origin == self.id || u.vc.len() != self.n {
            return;
        }
        let delivered = self.vc.get(u.origin as usize).copied().unwrap_or(0);
        if u.seq <= delivered {
            // A retransmission of something we already delivered — the
            // origin is missing our ack; repeat the cumulative one.
            self.ack(net, u.origin, delivered);
            return;
        }
        if self
            .buffer
            .iter()
            .any(|b| b.origin == u.origin && b.seq == u.seq)
        {
            return;
        }
        self.lamport = self.lamport.max(u.ts);
        self.buffer.push(u);
        self.deliver_causal(net);
    }

    /// Broadcasts a *cumulative* delivery ack: "I have delivered every
    /// update of `origin` up through `seq`". Cumulative semantics make
    /// acks freely re-sendable — a lost ack is healed by any later one
    /// (or by the peer-up re-broadcast in [`SpecCore::retransmit`]).
    /// Peer links form a full mesh; everyone but the origin ignores it.
    fn ack(&self, net: &mut impl Egress, origin: u32, seq: u64) {
        net.to_peers(&NetMsg::SpecAck {
            origin,
            seq,
            acker: self.id,
            acker_seq: self.next_seq,
        });
    }

    /// CBCAST delivery: an update is deliverable once its causal past
    /// is — its origin entry is exactly our next expected, every other
    /// entry is no newer than what we delivered.
    fn deliver_causal(&mut self, net: &mut impl Egress) {
        loop {
            let next = self.buffer.iter().position(|u| {
                u.vc.iter().enumerate().all(|(j, &c)| {
                    let have = self.vc.get(j).copied().unwrap_or(0);
                    if j == u.origin as usize {
                        c == have + 1
                    } else {
                        c <= have
                    }
                })
            });
            let Some(at) = next else { break };
            let u = self.buffer.swap_remove(at);
            if let Some(slot) = self.vc.get_mut(u.origin as usize) {
                *slot = u.seq;
            }
            let (origin, seq) = (u.origin, u.seq);
            self.insert_sorted(u);
            self.ack(net, origin, seq);
        }
        self.settle(net);
    }

    /// One cumulative delivery ack for our own updates: marks `acker`
    /// on every pending update with seq at or below the acked one.
    fn on_ack(&mut self, net: &mut impl Egress, origin: u32, seq: u64, acker: u32, acker_seq: u64) {
        if origin != self.id || acker as usize >= self.n {
            return;
        }
        for (own_seq, p) in self.pending.iter_mut() {
            if *own_seq > seq {
                continue;
            }
            if let Some(slot) = p.acked.get_mut(acker as usize) {
                *slot = true;
            }
            if let Some(slot) = p.acker_seq.get_mut(acker as usize) {
                *slot = (*slot).max(acker_seq);
            }
        }
        self.settle(net);
    }

    /// Serves every causal/strong view whose condition now holds and
    /// retires own updates that are fully served and fully acked.
    fn settle(&mut self, net: &mut impl Egress) {
        let mut done = Vec::new();
        let seqs: Vec<u64> = self.pending.keys().copied().collect();
        for seq in seqs {
            let Some(p) = self.pending.get(&seq) else {
                continue;
            };
            let others_acked = p
                .acked
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != self.id as usize)
                .filter(|(_, a)| **a)
                .count();
            let causal_ready = self.n == 1 || others_acked > 0;
            let stable = p.fully_acked()
                && p.acker_seq
                    .iter()
                    .enumerate()
                    .all(|(i, &s)| self.vc.get(i).copied().unwrap_or(0) >= s);
            let key = p.key;
            let wants = p.wants;

            if wants.causal && !p.causal_sent && causal_ready {
                let val = self.replay(key, None);
                let closing = !wants.strong;
                if let Some(p) = self.pending.get_mut(&seq) {
                    p.causal_sent = true;
                }
                if let Some(p) = self.pending.get(&seq) {
                    self.reply(net, p, ConsistencyLevel::CAUSAL, val, closing);
                }
            }
            if wants.strong && stable {
                let strong_sent = self
                    .pending
                    .get(&seq)
                    .map(|p| p.strong_sent)
                    .unwrap_or(true);
                if !strong_sent {
                    let val = self.replay(key, None);
                    if let Some(p) = self.pending.get_mut(&seq) {
                        p.strong_sent = true;
                    }
                    if let Some(p) = self.pending.get(&seq) {
                        self.reply(net, p, ConsistencyLevel::STRONG, val, true);
                    }
                }
            }
            if let Some(p) = self.pending.get(&seq) {
                if p.served() && p.fully_acked() {
                    done.push(seq);
                }
            }
        }
        for seq in done {
            self.pending.remove(&seq);
        }
    }

    /// Connection-driven anti-entropy, run whenever a peer link comes
    /// (back) up. Two roles:
    ///
    /// - *origin*: re-gossip every own update still awaiting acks — the
    ///   peer may have been down (or the link not yet established) when
    ///   the gossip first went out;
    /// - *acker*: re-broadcast the cumulative delivery ack for every
    ///   other origin — an ack sent while our own outbound link was
    ///   still down was lost, and the origin's strong views wait on it.
    fn retransmit(&mut self, net: &mut impl Egress) {
        let keys: Vec<(u64, u32, u64)> = self.pending.values().map(|p| p.key).collect();
        for key in keys {
            let Some(u) = self.log.iter().find(|u| u.order_key() == key) else {
                continue;
            };
            net.to_peers(&NetMsg::SpecGossip {
                origin: u.origin,
                seq: u.seq,
                ts: u.ts,
                vc: u.vc.clone(),
                op: u.op.clone(),
            });
        }
        for (j, &delivered) in self.vc.clone().iter().enumerate() {
            if j != self.id as usize && delivered > 0 {
                self.ack(net, j as u32, delivered);
            }
        }
    }
}
