//! # icg-net — Correctables over real sockets
//!
//! Everything else in this workspace exercises the Correctables stack
//! in-process on the deterministic simulator. This crate is the
//! deployment layer: a hand-rolled binary wire codec, a blocking-TCP
//! transport built from plain threads, a quorum-store replica server,
//! and a client-side [`Binding`](correctables::Binding) — so the *same*
//! `Client`/`Correctable` code that runs against `simnet` serves real
//! traffic across machines.
//!
//! The crate has four layers, bottom up:
//!
//! - [`wire`] — derive-free [`Wire`] encode/decode for every message and
//!   its component types. No serde; the byte layout is explicit,
//!   documented (`DESIGN.md` §10), and property-tested for round-trip
//!   identity and rejection of truncated or corrupt input. Two
//!   generations share one tag space: the v1 quorum-store `Msg`, and
//!   the v2 [`NetMsg`] envelope that adds the spec-store protocol —
//!   `Hello`/`HelloAck` (the consistency-level directory handshake,
//!   `DESIGN.md` §13) and `SpecSubmit`/`SpecReply`/`SpecGossip`/
//!   `SpecAck`/`SpecFailed`. A `NetMsg::Store` frame is byte-identical
//!   to the bare v1 `Msg`, so old and new peers interoperate.
//! - [`frame`] — length-prefixed framing with a version byte
//!   (per-message minimum via [`Wire::min_wire_version`]; readers
//!   accept [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`]) and a hard size
//!   cap against corrupt length prefixes.
//! - [`transport`] / [`reactor`] — the blocking per-connection
//!   writer/reader thread pairs, and the default hand-rolled epoll
//!   reactor (edge-triggered loops, per-connection state machines,
//!   vectored writes with backpressure). No async runtime either way.
//! - [`server`] / [`binding`] / [`spec_binding`] — the replica
//!   ([`ReplicaServer`], hosting the quorum store and the
//!   `specstore`-backed update/causal/strong levels) and the client
//!   bindings ([`TcpBinding`] for the quorum store, [`TcpSpecBinding`]
//!   for spec objects at any registered consistency level). Both
//!   implement `Binding`, so incremental consistency — preliminary
//!   weak views, update/causal refinement, strong closes, the *CC
//!   confirmation optimization, speculation, recording, the oracle —
//!   works over sockets unchanged.
//!
//! ## When to use this instead of `simnet`
//!
//! Use `simnet` stacks for experiments and regression tests: they are
//! deterministic, virtual-time, and reproduce the paper's topologies
//! bit-for-bit. Use this crate to *deploy*: real latency, real loss,
//! real process boundaries. `OPERATIONS.md` at the repository root is
//! the operator's guide (ports, flags, failure modes); the
//! `icg-replicad` / `icg-loadgen` binaries in `icg_apps` and
//! `scripts/cluster_demo.sh` stand up a cluster in one command.
//!
//! ```no_run
//! use icg_net::{spawn_local_cluster, ServerConfig, TcpBinding, TcpConfig};
//! use correctables::Client;
//! use quorumstore::{Key, StoreOp, Value};
//!
//! // Three replicas on loopback ephemeral ports…
//! let replicas = spawn_local_cluster(3, |_| ServerConfig::default());
//! let addrs = replicas.iter().map(|r| r.addr()).collect();
//! // …and an ordinary Correctables client against them.
//! let client = Client::new(TcpBinding::connect(TcpConfig::new(addrs, 100)).unwrap());
//! let read = client.invoke(StoreOp::Read(Key::plain(7)));
//! let view = read.wait_final(std::time::Duration::from_secs(2)).unwrap();
//! # let _ = view;
//! ```

#![deny(missing_docs)]

pub mod binding;
pub mod frame;
mod protocol;
mod pump;
pub mod reactor;
pub mod server;
pub mod spec_binding;
pub mod transport;
pub mod wire;

pub use binding::{TcpBinding, TcpConfig};
pub use frame::{FrameError, MAX_FRAME};
pub use reactor::ClientReactor;
pub use server::{spawn_local_cluster, ReplicaHandle, ReplicaServer, ServerConfig};
pub use spec_binding::{SpecTcpConfig, TcpSpecBinding};
pub use transport::{Outbound, Transport};
pub use wire::{
    LevelInfo, NetMsg, Reader, SpecOp, Wire, WireError, MIN_WIRE_VERSION, WIRE_VERSION,
};
