//! The hand-rolled wire codec: derive-free, allocation-conscious binary
//! encode/decode for every message that crosses a socket.
//!
//! Every encodable type implements [`Wire`] by hand — there is no serde,
//! no derive macro, and no reflection, so the byte layout of each message
//! is exactly what the impl writes and nothing else. All integers are
//! little-endian. Variable-length collections carry a `u32` element
//! count, bounded at decode time by [`MAX_IDS`] so a corrupt or hostile
//! frame cannot ask the decoder to allocate gigabytes.
//!
//! The layout of each type is documented in `DESIGN.md` §10; the framing
//! that wraps an encoded message on a stream lives in [`crate::frame`].

use correctables::spec::{CtrOp, RegOp};
use quorumstore::messages::{FailReason, Msg, Phase};
use quorumstore::types::{Key, OpId, ReadKind, Value, Version, Versioned};
use quorumstore::StoreOp;
use simnet::NodeId;

/// Protocol bound on [`Value::Ids`] list lengths, enforced on **both**
/// sides of the codec: decode rejects longer lists (a corrupt length
/// prefix must not turn into an attempted multi-gigabyte allocation),
/// and encode panics on them — a sender must fail loudly rather than
/// emit a poison frame every receiver will reject.
pub const MAX_IDS: u32 = 1 << 20;

/// Protocol bound on the level directory a handshake advertises and on
/// the per-submit wanted-level list. The level registry's wire-id space
/// is a `u8`, so 255 is the true ceiling; 64 is already far beyond any
/// sane deployment.
pub const MAX_LEVELS: u8 = 64;

/// Protocol bound on the vector-clock width of a spec-store gossip
/// message — i.e. on the replica-set size of a TCP spec deployment.
pub const MAX_REPLICAS: u32 = 64;

/// Why a byte sequence failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type being decoded when the unknown tag was hit.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix exceeded its sanity bound (e.g. [`MAX_IDS`]).
    TooLarge {
        /// The type being decoded.
        what: &'static str,
        /// The claimed length.
        len: u64,
    },
    /// Bytes were left over after the outermost value was decoded.
    TrailingBytes {
        /// How many bytes remained.
        extra: usize,
    },
    /// The frame header announced an unsupported wire-format version.
    BadVersion {
        /// The version byte received.
        got: u8,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag { what, tag } => write!(f, "unknown tag {tag:#04x} decoding {what}"),
            WireError::TooLarge { what, len } => {
                write!(f, "length {len} exceeds the sanity bound decoding {what}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (speak versions {MIN_WIRE_VERSION}..={WIRE_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// The newest wire-format version this build speaks. The frame header
/// carries a version byte so an incompatible revision is rejected
/// cleanly instead of misparsed (see [`crate::frame`]).
///
/// Version history:
///
/// - **1** — the original quorum-store message set ([`Msg`],
///   tags `0x01..=0x0A`).
/// - **2** — the [`NetMsg`] envelope: a level-directory handshake
///   ([`NetMsg::Hello`]/[`NetMsg::HelloAck`]) and the spec-store
///   messages (tags `0x0B..=0x11`), whose replies carry a consistency
///   level id byte. Version-1 frames remain fully decodable — every
///   `Msg` encodes byte-identically inside [`NetMsg::Store`] — and
///   version-1-compatible messages are still *sent* in version-1 frames
///   (see [`Wire::min_wire_version`]), so old and new peers interoperate
///   on the shared subset.
pub const WIRE_VERSION: u8 = 2;

/// The oldest wire-format version this build still accepts.
pub const MIN_WIRE_VERSION: u8 = 1;

/// A cursor over a received byte buffer.
///
/// All decoding goes through this type: it tracks the read position,
/// returns [`WireError::Truncated`] instead of panicking when bytes run
/// out, and exposes [`Reader::remaining`] so callers can enforce
/// exact-length consumption.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Consumes a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consumes a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Decodes one `T` and then requires the buffer to be fully consumed.
    pub fn finish<T: Wire>(mut self) -> Result<T, WireError> {
        let v = T::decode(&mut self)?;
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(v)
    }
}

/// Binary encode/decode, implemented by hand for every wire type.
///
/// The contract is round-trip identity: for every value,
/// `decode(encode(v)) == v`, and decode must reject (never panic on)
/// truncated input and unknown tag bytes. The property tests in
/// `tests/prop_wire.rs` enforce both halves for every impl.
pub trait Wire: Sized {
    /// Appends this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes one value from the reader, advancing it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// The oldest wire version whose decoder understands this *value*
    /// (not just this type). Framing stamps each frame with this, so a
    /// message that predates the current version still reaches
    /// old-version peers, while a genuinely new message is cleanly
    /// rejected by them ([`WireError::BadVersion`]) instead of
    /// misparsed. Defaults to [`WIRE_VERSION`].
    fn min_wire_version(&self) -> u8 {
        WIRE_VERSION
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

impl Wire for Key {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.ns);
        put_u64(buf, self.id);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Key {
            ns: r.u8()?,
            id: r.u64()?,
        })
    }
}

impl Wire for Version {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.ts);
        put_u32(buf, self.writer);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Version {
            ts: r.u64()?,
            writer: r.u32()?,
        })
    }
}

impl Wire for OpId {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.client.0 as u64);
        put_u64(buf, self.seq);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OpId {
            client: NodeId(r.u64()? as usize),
            seq: r.u64()?,
        })
    }
}

impl Wire for Value {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Value::Opaque(n) => {
                buf.push(0);
                put_u32(buf, *n);
            }
            Value::Ids(ids) => {
                assert!(
                    ids.len() <= MAX_IDS as usize,
                    "Value::Ids with {} elements exceeds the wire protocol bound ({MAX_IDS})",
                    ids.len()
                );
                buf.push(1);
                put_u32(buf, ids.len() as u32);
                for id in ids {
                    put_u64(buf, *id);
                }
            }
            Value::Delta {
                field_len,
                record_len,
            } => {
                buf.push(2);
                put_u32(buf, *field_len);
                put_u32(buf, *record_len);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Value::Opaque(r.u32()?)),
            1 => {
                let n = r.u32()?;
                if n > MAX_IDS {
                    return Err(WireError::TooLarge {
                        what: "Value::Ids",
                        len: u64::from(n),
                    });
                }
                // Guard the allocation against a large length prefix on a
                // short buffer: validate remaining bytes before reserving.
                if r.remaining() < n as usize * 8 {
                    return Err(WireError::Truncated);
                }
                let mut ids = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    ids.push(r.u64()?);
                }
                Ok(Value::Ids(ids))
            }
            2 => Ok(Value::Delta {
                field_len: r.u32()?,
                record_len: r.u32()?,
            }),
            tag => Err(WireError::BadTag { what: "Value", tag }),
        }
    }
}

impl Wire for Versioned {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.value.encode(buf);
        self.version.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Versioned {
            value: Value::decode(r)?,
            version: Version::decode(r)?,
        })
    }
}

impl Wire for ReadKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ReadKind::Single { r } => {
                buf.push(0);
                buf.push(*r);
            }
            ReadKind::Icg { r, confirm } => {
                buf.push(1);
                buf.push(*r);
                buf.push(u8::from(*confirm));
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(ReadKind::Single { r: r.u8()? }),
            1 => Ok(ReadKind::Icg {
                r: r.u8()?,
                confirm: r.u8()? != 0,
            }),
            tag => Err(WireError::BadTag {
                what: "ReadKind",
                tag,
            }),
        }
    }
}

impl Wire for Phase {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            Phase::Single => 0,
            Phase::Preliminary => 1,
            Phase::Final => 2,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Phase::Single),
            1 => Ok(Phase::Preliminary),
            2 => Ok(Phase::Final),
            tag => Err(WireError::BadTag { what: "Phase", tag }),
        }
    }
}

impl Wire for FailReason {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            FailReason::Timeout => 0,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(FailReason::Timeout),
            tag => Err(WireError::BadTag {
                what: "FailReason",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

/// Message tags on the wire (one byte, after the version byte of the
/// frame header). Documented in `DESIGN.md` §10; new messages append
/// new tags, existing tags are never reused. Tags `0x01..=0x0A` are the
/// version-1 [`Msg`] set; `0x0B` and up are the version-2 [`NetMsg`]
/// additions. The two share one tag space, which is what makes
/// [`NetMsg::Store`] byte-identical to a bare [`Msg`].
mod tag {
    pub const CLIENT_READ: u8 = 0x01;
    pub const CLIENT_WRITE: u8 = 0x02;
    pub const PEER_READ: u8 = 0x03;
    pub const PEER_READ_RESP: u8 = 0x04;
    pub const PEER_WRITE: u8 = 0x05;
    pub const PEER_WRITE_ACK: u8 = 0x06;
    pub const READ_REPLY: u8 = 0x07;
    pub const READ_CONFIRM: u8 = 0x08;
    pub const WRITE_REPLY: u8 = 0x09;
    pub const OP_FAILED: u8 = 0x0A;
    /// Highest version-1 tag: everything at or below decodes as a
    /// [`super::Msg`] inside [`super::NetMsg::Store`].
    pub const STORE_MAX: u8 = OP_FAILED;
    pub const HELLO: u8 = 0x0B;
    pub const HELLO_ACK: u8 = 0x0C;
    pub const SPEC_SUBMIT: u8 = 0x0D;
    pub const SPEC_REPLY: u8 = 0x0E;
    pub const SPEC_GOSSIP: u8 = 0x0F;
    pub const SPEC_ACK: u8 = 0x10;
    pub const SPEC_FAILED: u8 = 0x11;
}

impl Wire for Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::ClientRead { op, key, kind } => {
                buf.push(tag::CLIENT_READ);
                op.encode(buf);
                key.encode(buf);
                kind.encode(buf);
            }
            Msg::ClientWrite { op, key, value, w } => {
                buf.push(tag::CLIENT_WRITE);
                op.encode(buf);
                key.encode(buf);
                value.encode(buf);
                buf.push(*w);
            }
            Msg::PeerRead { op, key } => {
                buf.push(tag::PEER_READ);
                op.encode(buf);
                key.encode(buf);
            }
            Msg::PeerReadResp { op, data } => {
                buf.push(tag::PEER_READ_RESP);
                op.encode(buf);
                data.encode(buf);
            }
            Msg::PeerWrite { key, data, ack_op } => {
                buf.push(tag::PEER_WRITE);
                key.encode(buf);
                data.encode(buf);
                ack_op.encode(buf);
            }
            Msg::PeerWriteAck { op } => {
                buf.push(tag::PEER_WRITE_ACK);
                op.encode(buf);
            }
            Msg::ReadReply { op, phase, data } => {
                buf.push(tag::READ_REPLY);
                op.encode(buf);
                phase.encode(buf);
                data.encode(buf);
            }
            Msg::ReadConfirm { op, version } => {
                buf.push(tag::READ_CONFIRM);
                op.encode(buf);
                version.encode(buf);
            }
            Msg::WriteReply { op } => {
                buf.push(tag::WRITE_REPLY);
                op.encode(buf);
            }
            Msg::OpFailed { op, reason } => {
                buf.push(tag::OP_FAILED);
                op.encode(buf);
                reason.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.u8()?;
        decode_msg_body(tag, r)
    }

    /// Every [`Msg`] predates version 2 and must keep reaching
    /// version-1 peers.
    fn min_wire_version(&self) -> u8 {
        1
    }
}

/// Decodes a [`Msg`] body whose tag byte has already been consumed —
/// shared by [`Msg::decode`] and the [`NetMsg`] envelope decoder.
fn decode_msg_body(tag: u8, r: &mut Reader<'_>) -> Result<Msg, WireError> {
    match tag {
        tag::CLIENT_READ => Ok(Msg::ClientRead {
            op: OpId::decode(r)?,
            key: Key::decode(r)?,
            kind: ReadKind::decode(r)?,
        }),
        tag::CLIENT_WRITE => Ok(Msg::ClientWrite {
            op: OpId::decode(r)?,
            key: Key::decode(r)?,
            value: Value::decode(r)?,
            w: r.u8()?,
        }),
        tag::PEER_READ => Ok(Msg::PeerRead {
            op: OpId::decode(r)?,
            key: Key::decode(r)?,
        }),
        tag::PEER_READ_RESP => Ok(Msg::PeerReadResp {
            op: OpId::decode(r)?,
            data: Versioned::decode(r)?,
        }),
        tag::PEER_WRITE => Ok(Msg::PeerWrite {
            key: Key::decode(r)?,
            data: Versioned::decode(r)?,
            ack_op: Option::<OpId>::decode(r)?,
        }),
        tag::PEER_WRITE_ACK => Ok(Msg::PeerWriteAck {
            op: OpId::decode(r)?,
        }),
        tag::READ_REPLY => Ok(Msg::ReadReply {
            op: OpId::decode(r)?,
            phase: Phase::decode(r)?,
            data: Versioned::decode(r)?,
        }),
        tag::READ_CONFIRM => Ok(Msg::ReadConfirm {
            op: OpId::decode(r)?,
            version: Version::decode(r)?,
        }),
        tag::WRITE_REPLY => Ok(Msg::WriteReply {
            op: OpId::decode(r)?,
        }),
        tag::OP_FAILED => Ok(Msg::OpFailed {
            op: OpId::decode(r)?,
            reason: FailReason::decode(r)?,
        }),
        tag => Err(WireError::BadTag { what: "Msg", tag }),
    }
}

impl Wire for StoreOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            StoreOp::Read(key) => {
                buf.push(0);
                key.encode(buf);
            }
            StoreOp::Write(key, value) => {
                buf.push(1);
                key.encode(buf);
                value.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(StoreOp::Read(Key::decode(r)?)),
            1 => Ok(StoreOp::Write(Key::decode(r)?, Value::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "StoreOp",
                tag,
            }),
        }
    }
}

/// One entry of the level directory a replica advertises in
/// [`NetMsg::HelloAck`]: the server-side wire id, lattice rank, and name
/// of a registered consistency level. A client resolves the ids of every
/// later reply through this directory, registering levels it has never
/// heard of — which is how a deployment-defined level reaches clients
/// with zero code changes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelInfo {
    /// The advertising process's wire id for this level (stable per
    /// process, *not* across processes for custom levels — hence the
    /// directory).
    pub id: u8,
    /// Position in the weak-to-strong total order.
    pub rank: u8,
    /// Registered name (non-empty, at most 64 bytes — the registry's
    /// own bound).
    pub name: String,
}

impl Wire for LevelInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        assert!(
            !self.name.is_empty() && self.name.len() <= 64,
            "level name length {} outside the wire protocol bound (1..=64)",
            self.name.len()
        );
        buf.push(self.id);
        buf.push(self.rank);
        buf.push(self.name.len() as u8);
        buf.extend_from_slice(self.name.as_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = r.u8()?;
        let rank = r.u8()?;
        let len = r.u8()?;
        if len == 0 || len > 64 {
            return Err(WireError::TooLarge {
                what: "LevelInfo::name",
                len: u64::from(len),
            });
        }
        let bytes = r.take(len as usize)?;
        let name = std::str::from_utf8(bytes)
            .map_err(|_| WireError::BadTag {
                what: "LevelInfo::name (utf-8)",
                tag: bytes[0],
            })?
            .to_string();
        Ok(LevelInfo { id, rank, name })
    }
}

/// An operation of the TCP spec store: which sequential specification
/// it addresses and the op itself. The server hosts one register map
/// and one counter map side by side; both return `u64`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecOp {
    /// A last-value-register operation ([`correctables::spec::RegisterSpec`]).
    Reg(RegOp),
    /// A counter-map operation ([`correctables::spec::CounterSpec`]).
    Ctr(CtrOp),
}

impl SpecOp {
    /// Whether the op leaves the spec state unchanged (reads gate no
    /// convergence obligations).
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            SpecOp::Reg(RegOp::Read(_)) | SpecOp::Ctr(CtrOp::Get(_))
        )
    }
}

impl Wire for SpecOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SpecOp::Reg(RegOp::Read(k)) => {
                buf.push(0);
                put_u64(buf, *k);
            }
            SpecOp::Reg(RegOp::Write(k, v)) => {
                buf.push(1);
                put_u64(buf, *k);
                put_u64(buf, *v);
            }
            SpecOp::Ctr(CtrOp::Get(k)) => {
                buf.push(2);
                put_u64(buf, *k);
            }
            SpecOp::Ctr(CtrOp::Put(k, v)) => {
                buf.push(3);
                put_u64(buf, *k);
                put_u64(buf, *v);
            }
            SpecOp::Ctr(CtrOp::Add(k, d)) => {
                buf.push(4);
                put_u64(buf, *k);
                put_u64(buf, *d);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(SpecOp::Reg(RegOp::Read(r.u64()?))),
            1 => Ok(SpecOp::Reg(RegOp::Write(r.u64()?, r.u64()?))),
            2 => Ok(SpecOp::Ctr(CtrOp::Get(r.u64()?))),
            3 => Ok(SpecOp::Ctr(CtrOp::Put(r.u64()?, r.u64()?))),
            4 => Ok(SpecOp::Ctr(CtrOp::Add(r.u64()?, r.u64()?))),
            tag => Err(WireError::BadTag {
                what: "SpecOp",
                tag,
            }),
        }
    }
}

/// The version-2 message envelope: everything a replica connection can
/// carry.
///
/// [`NetMsg::Store`] wraps the version-1 quorum-store [`Msg`] set and
/// encodes **byte-identically** to a bare `Msg` (the two share one tag
/// space), so a version-1 peer's frames decode as `Store` variants and a
/// `Store` frame — stamped version 1 by [`Wire::min_wire_version`] —
/// decodes on a version-1 peer. The other variants are version-2-only:
/// the level-directory handshake and the spec store, whose replies carry
/// the consistency level id negotiated through that directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetMsg {
    /// A version-1 quorum-store message, byte-compatible both ways.
    Store(Msg),
    /// Client → server: request the level directory. `client` is the
    /// sender's client id, echoed nowhere — it exists so a server log
    /// can attribute handshakes.
    Hello {
        /// The connecting client's id.
        client: u64,
    },
    /// Server → client: the wire version the server speaks and its full
    /// consistency-level directory.
    HelloAck {
        /// The server's [`WIRE_VERSION`].
        version: u8,
        /// Every level registered in the server process, registration
        /// order, at most [`MAX_LEVELS`] entries.
        levels: Vec<LevelInfo>,
    },
    /// Client → server: submit one spec-store operation, asking for
    /// views at the listed levels (server-side wire ids, weakest
    /// first).
    SpecSubmit {
        /// Submitting client's id.
        client: u64,
        /// Client-assigned sequence number, echoed in every reply.
        seq: u64,
        /// The operation.
        op: SpecOp,
        /// Requested level ids, at most [`MAX_LEVELS`].
        wants: Vec<u8>,
    },
    /// Server → client: one view of a submitted operation at one
    /// consistency level.
    SpecReply {
        /// Echo of the submitting client's id.
        client: u64,
        /// Echo of the client-assigned sequence number.
        seq: u64,
        /// The level id of this view (resolve via the handshake
        /// directory).
        level: u8,
        /// The view's value.
        val: u64,
        /// Whether this is the strongest view the op will receive.
        closing: bool,
    },
    /// Server → server: replicate one spec-store update.
    SpecGossip {
        /// Originating replica id.
        origin: u32,
        /// Origin-local sequence number of the update (1-based,
        /// gapless per origin).
        seq: u64,
        /// Lamport timestamp — the agreed total order is `(ts, origin,
        /// seq)`.
        ts: u64,
        /// The origin's vector clock *after* creating the update
        /// (causal-delivery guard), at most [`MAX_REPLICAS`] wide.
        vc: Vec<u64>,
        /// The operation.
        op: SpecOp,
    },
    /// Server → server: acknowledge causal delivery of one update back
    /// toward its origin.
    SpecAck {
        /// The acknowledged update's origin.
        origin: u32,
        /// The acknowledged update's origin-local sequence number.
        seq: u64,
        /// The acknowledging replica.
        acker: u32,
        /// How many updates the acker itself had submitted when it
        /// acked — the origin's strong views wait until these are
        /// delivered locally (stability, not just receipt).
        acker_seq: u64,
    },
    /// Server → client: the op cannot be served (e.g. it asked for a
    /// level this store does not implement).
    SpecFailed {
        /// Echo of the submitting client's id.
        client: u64,
        /// Echo of the client-assigned sequence number.
        seq: u64,
    },
}

impl Wire for NetMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            NetMsg::Store(m) => m.encode(buf),
            NetMsg::Hello { client } => {
                buf.push(tag::HELLO);
                put_u64(buf, *client);
            }
            NetMsg::HelloAck { version, levels } => {
                assert!(
                    levels.len() <= MAX_LEVELS as usize,
                    "level directory with {} entries exceeds the wire protocol bound ({MAX_LEVELS})",
                    levels.len()
                );
                buf.push(tag::HELLO_ACK);
                buf.push(*version);
                buf.push(levels.len() as u8);
                for l in levels {
                    l.encode(buf);
                }
            }
            NetMsg::SpecSubmit {
                client,
                seq,
                op,
                wants,
            } => {
                assert!(
                    wants.len() <= MAX_LEVELS as usize,
                    "wanted-level list with {} entries exceeds the wire protocol bound ({MAX_LEVELS})",
                    wants.len()
                );
                buf.push(tag::SPEC_SUBMIT);
                put_u64(buf, *client);
                put_u64(buf, *seq);
                op.encode(buf);
                buf.push(wants.len() as u8);
                buf.extend_from_slice(wants);
            }
            NetMsg::SpecReply {
                client,
                seq,
                level,
                val,
                closing,
            } => {
                buf.push(tag::SPEC_REPLY);
                put_u64(buf, *client);
                put_u64(buf, *seq);
                buf.push(*level);
                put_u64(buf, *val);
                buf.push(u8::from(*closing));
            }
            NetMsg::SpecGossip {
                origin,
                seq,
                ts,
                vc,
                op,
            } => {
                assert!(
                    vc.len() <= MAX_REPLICAS as usize,
                    "vector clock of width {} exceeds the wire protocol bound ({MAX_REPLICAS})",
                    vc.len()
                );
                buf.push(tag::SPEC_GOSSIP);
                put_u32(buf, *origin);
                put_u64(buf, *seq);
                put_u64(buf, *ts);
                put_u32(buf, vc.len() as u32);
                for v in vc {
                    put_u64(buf, *v);
                }
                op.encode(buf);
            }
            NetMsg::SpecAck {
                origin,
                seq,
                acker,
                acker_seq,
            } => {
                buf.push(tag::SPEC_ACK);
                put_u32(buf, *origin);
                put_u64(buf, *seq);
                put_u32(buf, *acker);
                put_u64(buf, *acker_seq);
            }
            NetMsg::SpecFailed { client, seq } => {
                buf.push(tag::SPEC_FAILED);
                put_u64(buf, *client);
                put_u64(buf, *seq);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let t = r.u8()?;
        match t {
            0x01..=tag::STORE_MAX => Ok(NetMsg::Store(decode_msg_body(t, r)?)),
            tag::HELLO => Ok(NetMsg::Hello { client: r.u64()? }),
            tag::HELLO_ACK => {
                let version = r.u8()?;
                let n = r.u8()?;
                if n > MAX_LEVELS {
                    return Err(WireError::TooLarge {
                        what: "NetMsg::HelloAck levels",
                        len: u64::from(n),
                    });
                }
                let mut levels = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    levels.push(LevelInfo::decode(r)?);
                }
                Ok(NetMsg::HelloAck { version, levels })
            }
            tag::SPEC_SUBMIT => {
                let client = r.u64()?;
                let seq = r.u64()?;
                let op = SpecOp::decode(r)?;
                let n = r.u8()?;
                if n > MAX_LEVELS {
                    return Err(WireError::TooLarge {
                        what: "NetMsg::SpecSubmit wants",
                        len: u64::from(n),
                    });
                }
                let wants = r.take(n as usize)?.to_vec();
                Ok(NetMsg::SpecSubmit {
                    client,
                    seq,
                    op,
                    wants,
                })
            }
            tag::SPEC_REPLY => Ok(NetMsg::SpecReply {
                client: r.u64()?,
                seq: r.u64()?,
                level: r.u8()?,
                val: r.u64()?,
                closing: r.u8()? != 0,
            }),
            tag::SPEC_GOSSIP => {
                let origin = r.u32()?;
                let seq = r.u64()?;
                let ts = r.u64()?;
                let n = r.u32()?;
                if n > MAX_REPLICAS {
                    return Err(WireError::TooLarge {
                        what: "NetMsg::SpecGossip vc",
                        len: u64::from(n),
                    });
                }
                if r.remaining() < n as usize * 8 {
                    return Err(WireError::Truncated);
                }
                let mut vc = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    vc.push(r.u64()?);
                }
                let op = SpecOp::decode(r)?;
                Ok(NetMsg::SpecGossip {
                    origin,
                    seq,
                    ts,
                    vc,
                    op,
                })
            }
            tag::SPEC_ACK => Ok(NetMsg::SpecAck {
                origin: r.u32()?,
                seq: r.u64()?,
                acker: r.u32()?,
                acker_seq: r.u64()?,
            }),
            tag::SPEC_FAILED => Ok(NetMsg::SpecFailed {
                client: r.u64()?,
                seq: r.u64()?,
            }),
            tag => Err(WireError::BadTag {
                what: "NetMsg",
                tag,
            }),
        }
    }

    /// Store messages still travel in version-1 frames (old peers must
    /// keep decoding them); everything else is version-2-only.
    fn min_wire_version(&self) -> u8 {
        match self {
            NetMsg::Store(m) => m.min_wire_version(),
            _ => 2,
        }
    }
}

/// Encodes a value into a fresh buffer (convenience for tests and
/// one-shot encodes).
pub fn to_bytes<T: Wire>(v: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    v.encode(&mut buf);
    buf
}

/// Decodes exactly one value from `buf`, rejecting trailing bytes.
pub fn from_bytes<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    Reader::new(buf).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> OpId {
        OpId {
            client: NodeId(3),
            seq: 77,
        }
    }

    #[test]
    fn msg_round_trips() {
        let msgs = vec![
            Msg::ClientRead {
                op: op(),
                key: Key { ns: 2, id: 9 },
                kind: ReadKind::Icg {
                    r: 2,
                    confirm: true,
                },
            },
            Msg::ClientWrite {
                op: op(),
                key: Key::plain(1),
                value: Value::Ids(vec![1, 2, 3]),
                w: 1,
            },
            Msg::PeerWrite {
                key: Key::plain(4),
                data: Versioned::absent(),
                ack_op: Some(op()),
            },
            Msg::ReadConfirm {
                op: op(),
                version: Version { ts: 8, writer: 1 },
            },
            Msg::OpFailed {
                op: op(),
                reason: FailReason::Timeout,
            },
        ];
        for m in msgs {
            let bytes = to_bytes(&m);
            let back: Msg = from_bytes(&bytes).expect("decodes");
            assert_eq!(back, m);
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = to_bytes(&Msg::ClientRead {
            op: op(),
            key: Key::plain(5),
            kind: ReadKind::Single { r: 1 },
        });
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Msg>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn garbage_tag_rejected() {
        assert_eq!(
            from_bytes::<Msg>(&[0xFF]),
            Err(WireError::BadTag {
                what: "Msg",
                tag: 0xFF
            })
        );
    }

    #[test]
    fn oversized_id_list_rejected() {
        let mut buf = vec![1u8]; // Value::Ids tag
        buf.extend_from_slice(&(MAX_IDS + 1).to_le_bytes());
        assert!(matches!(
            from_bytes::<Value>(&buf),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&Version { ts: 1, writer: 2 });
        bytes.push(0);
        assert!(matches!(
            from_bytes::<Version>(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }
}
