//! The spec-store client: a [`Binding`] over the version-2 wire.
//!
//! [`TcpSpecBinding`] drives the replicated sequential-spec store that
//! rides the replica servers' connections (see `SpecCore` in the
//! protocol module): `Register` and `Counter` operations with the full
//! incremental refinement *weak → update → causal → strong* on a single
//! Correctable.
//!
//! ## The level-directory handshake
//!
//! Custom consistency levels get their wire ids assigned per process, in
//! registration order — a client and a server that registered levels in
//! different orders disagree on the numbering. The handshake resolves
//! this: on connect the binding sends [`NetMsg::Hello`] and the server
//! answers [`NetMsg::HelloAck`] with its complete level directory
//! (`id`, `rank`, `name` per level). The binding registers every
//! directory entry locally (idempotent for levels it already knows) and
//! keeps a two-way id translation table, so:
//!
//! - levels requested on [`Binding::submit`] are sent under the
//!   *server's* ids;
//! - levels on [`NetMsg::SpecReply`] are translated back to local
//!   [`ConsistencyLevel`] values before the upcall sees them.
//!
//! A level the server advertises but this process never registered
//! becomes a fresh local registration — a fifth custom level on the
//! server needs zero client code changes to round-trip.
//!
//! Unlike [`crate::TcpBinding`] this binding holds a single connection
//! with no failover list: the spec store serves every view from the
//! replica the client connected to, and a lost connection fails the
//! in-flight operations with [`Error::Unavailable`] and the binding
//! stays down (reconnect by constructing a new binding).

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use correctables::{Binding, ConsistencyLevel, Error, LevelSet, Upcall};

use crate::frame::{read_frame, write_frame};
use crate::pump::{recv_step, Deadlines, Step};
use crate::transport::{spawn_reader, Outbound};
use crate::wire::{LevelInfo, NetMsg, SpecOp};

/// Configuration of a [`TcpSpecBinding`].
#[derive(Clone, Copy, Debug)]
pub struct SpecTcpConfig {
    /// The replica to connect to.
    pub addr: SocketAddr,
    /// This client's id, echoed in every reply. Must be unique among
    /// concurrently connected spec clients.
    pub client_id: u64,
    /// Client-side deadline per operation; an operation whose strongest
    /// requested view never arrives fails with [`Error::Timeout`]
    /// instead of wedging open.
    pub op_timeout: Duration,
    /// Dial and handshake timeout.
    pub connect_timeout: Duration,
}

impl SpecTcpConfig {
    /// A config for `addr` with the defaults the tests use: 5 s op
    /// timeout, 1 s connect timeout.
    pub fn new(addr: SocketAddr, client_id: u64) -> SpecTcpConfig {
        SpecTcpConfig {
            addr,
            client_id,
            op_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(1),
        }
    }
}

/// The two-way wire-id translation table built from the handshake.
struct Directory {
    /// Local wire id → server wire id, for submissions.
    to_server: HashMap<u8, u8>,
    /// Server wire id → local level, for replies.
    from_server: HashMap<u8, ConsistencyLevel>,
    /// Every advertised level, as local values, directory order.
    levels: Vec<ConsistencyLevel>,
}

impl Directory {
    /// Folds the server's level directory into the local registry. An
    /// advertised level unknown here is registered on the spot; one
    /// whose name exists locally under a *different rank* cannot be
    /// represented and is skipped (submitting at it is impossible from
    /// this process anyway — no local value denotes it).
    fn build(infos: &[LevelInfo]) -> Directory {
        let mut dir = Directory {
            to_server: HashMap::new(),
            from_server: HashMap::new(),
            levels: Vec::new(),
        };
        for info in infos {
            let Ok(local) = ConsistencyLevel::register(&info.name, info.rank) else {
                continue;
            };
            dir.to_server.insert(local.wire_id(), info.id);
            dir.from_server.insert(info.id, local);
            dir.levels.push(local);
        }
        dir
    }
}

enum Event {
    Submit {
        op: SpecOp,
        wants: Vec<u8>,
        upcall: Upcall<u64>,
    },
    Reply(NetMsg),
    Disconnected,
    Shutdown,
}

/// Stops the client loop when the last binding clone is dropped (the
/// loop hands `Sender<Event>` clones to the reader thread, so channel
/// disconnection alone would never fire).
struct DropGuard {
    tx: Sender<Event>,
}

impl Drop for DropGuard {
    fn drop(&mut self) {
        let _ = self.tx.send(Event::Shutdown);
    }
}

/// A [`Binding`] for the replicated spec store: `Op` = [`SpecOp`],
/// `Val` = `u64`, four incremental levels per invocation. Cloning
/// shares the connection and the op-id space.
#[derive(Clone)]
pub struct TcpSpecBinding {
    tx: Sender<Event>,
    levels: LevelSet,
    server_levels: Vec<ConsistencyLevel>,
    server_version: u8,
    _shutdown_on_last_drop: Arc<DropGuard>,
}

impl TcpSpecBinding {
    /// Dials `cfg.addr`, performs the level-directory handshake, and
    /// starts the client loop.
    ///
    /// Fails if the replica is unreachable, closes mid-handshake, or
    /// answers the `Hello` with anything but a `HelloAck`.
    pub fn connect(cfg: SpecTcpConfig) -> io::Result<TcpSpecBinding> {
        let stream = TcpStream::connect_timeout(&cfg.addr, cfg.connect_timeout)?;
        // Handshake synchronously, before any reader thread exists: one
        // Hello out, one HelloAck back. The read timeout covers a peer
        // that accepts but never answers (e.g. a version-1 server that
        // dropped the Hello frame as garbage and closed).
        stream.set_read_timeout(Some(cfg.connect_timeout))?;
        let mut read_half = stream.try_clone()?;
        let mut scratch = Vec::new();
        {
            let mut write_half = stream.try_clone()?;
            write_frame(
                &mut write_half,
                &NetMsg::Hello {
                    client: cfg.client_id,
                },
                &mut scratch,
            )?;
        }
        let ack = read_frame::<NetMsg>(&mut read_half, &mut scratch)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let Some(NetMsg::HelloAck { version, levels }) = ack else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected HelloAck as the first frame",
            ));
        };
        stream.set_read_timeout(None)?;
        let dir = Directory::build(&levels);
        let server_levels = dir.levels.clone();

        let (tx, rx) = mpsc::channel::<Event>();
        let label = format!("spec{}", cfg.client_id);
        let out = Outbound::spawn(stream, &label)?;
        let reply_tx = tx.clone();
        let close_tx = tx.clone();
        spawn_reader::<NetMsg, _, _>(
            read_half,
            &label,
            move |msg| {
                let _ = reply_tx.send(Event::Reply(msg));
            },
            move |_reason| {
                let _ = close_tx.send(Event::Disconnected);
            },
        )?;
        let state = SpecLoop {
            cfg,
            conn: out,
            dir,
            next_seq: 0,
            pending: HashMap::new(),
            deadlines: Deadlines::new(),
        };
        std::thread::Builder::new()
            .name(format!("icg-spec-client-{}", cfg.client_id))
            .spawn(move || state.run(rx))?;
        Ok(TcpSpecBinding {
            tx: tx.clone(),
            levels: LevelSet::of(&[
                ConsistencyLevel::WEAK,
                ConsistencyLevel::UPDATE,
                ConsistencyLevel::CAUSAL,
                ConsistencyLevel::STRONG,
            ]),
            server_levels,
            server_version: version,
            _shutdown_on_last_drop: Arc::new(DropGuard { tx }),
        })
    }

    /// Every level the server's handshake directory advertised,
    /// translated to local values — including custom levels this
    /// process first learned of from the handshake.
    pub fn server_levels(&self) -> &[ConsistencyLevel] {
        &self.server_levels
    }

    /// The wire version the server announced in its `HelloAck`.
    pub fn server_version(&self) -> u8 {
        self.server_version
    }

    /// Disconnects and stops serving this binding. Pending operations
    /// fail with [`Error::Unavailable`]. Idempotent; dropping the last
    /// clone has the same effect.
    pub fn shutdown(&self) {
        let _ = self.tx.send(Event::Shutdown);
    }
}

impl Binding for TcpSpecBinding {
    type Op = SpecOp;
    type Val = u64;

    fn consistency_levels(&self) -> LevelSet {
        self.levels.clone()
    }

    fn submit(&self, op: SpecOp, levels: &[ConsistencyLevel], upcall: Upcall<u64>) {
        // Requested levels travel under the *local* ids here; the loop
        // translates to server ids (it owns the directory). A loop
        // that's gone means shutdown raced the submit.
        let wants: Vec<u8> = levels.iter().map(|l| l.wire_id()).collect();
        if self
            .tx
            .send(Event::Submit {
                op,
                wants,
                upcall: upcall.clone(),
            })
            .is_err()
        {
            upcall.fail(Error::Unavailable("spec client shut down".into()));
        }
    }
}

/// One in-flight spec operation.
struct PendingSpec {
    upcall: Upcall<u64>,
}

struct SpecLoop {
    cfg: SpecTcpConfig,
    conn: Outbound,
    dir: Directory,
    next_seq: u64,
    pending: HashMap<u64, PendingSpec>,
    deadlines: Deadlines<u64>,
}

impl SpecLoop {
    fn run(mut self, rx: Receiver<Event>) {
        loop {
            let pending = &self.pending;
            let next = self.deadlines.next_live(|seq| pending.contains_key(seq));
            let event = match recv_step(&rx, next) {
                Step::Event(e) => e,
                Step::Expired => {
                    self.fire_expired();
                    continue;
                }
                Step::Closed => break,
            };
            match event {
                Event::Submit { op, wants, upcall } => self.submit(op, &wants, upcall),
                Event::Reply(msg) => self.handle_reply(msg),
                Event::Disconnected => {
                    self.fail_all(|| Error::Unavailable("spec connection lost".into()));
                }
                Event::Shutdown => break,
            }
        }
        self.conn.kill();
        self.fail_all(|| Error::Unavailable("spec client shut down".into()));
    }

    fn fire_expired(&mut self) {
        let pending = &mut self.pending;
        self.deadlines.fire_expired(Instant::now(), |seq| {
            if let Some(p) = pending.remove(&seq) {
                p.upcall.fail(Error::Timeout);
            }
        });
    }

    fn fail_all(&mut self, err: impl Fn() -> Error) {
        for (_, p) in self.pending.drain() {
            p.upcall.fail(err());
        }
        self.deadlines.clear();
    }

    fn submit(&mut self, op: SpecOp, local_wants: &[u8], upcall: Upcall<u64>) {
        // Translate requested levels to the server's numbering. A level
        // with no directory entry cannot be requested honestly — fail
        // rather than silently downgrade the guarantee.
        let mut wants = Vec::with_capacity(local_wants.len());
        for &local in local_wants {
            let Some(&server) = self.dir.to_server.get(&local) else {
                upcall.fail(Error::Unavailable(
                    "server does not advertise a requested level".into(),
                ));
                return;
            };
            wants.push(server);
        }
        if self.conn.is_dead() {
            upcall.fail(Error::Unavailable("spec connection lost".into()));
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let msg = NetMsg::SpecSubmit {
            client: self.cfg.client_id,
            seq,
            op,
            wants,
        };
        self.pending.insert(seq, PendingSpec { upcall });
        self.deadlines
            .arm(Instant::now() + self.cfg.op_timeout, seq);
        if !self.conn.send(&msg) {
            if let Some(p) = self.pending.remove(&seq) {
                p.upcall
                    .fail(Error::Unavailable("spec connection lost".into()));
            }
        }
    }

    fn handle_reply(&mut self, msg: NetMsg) {
        match msg {
            NetMsg::SpecReply {
                client,
                seq,
                level,
                val,
                closing,
            } if client == self.cfg.client_id => {
                // A reply at a level the directory cannot translate
                // would deliver under the wrong name; drop it and let
                // the op's other views (or its deadline) resolve it.
                let Some(&local) = self.dir.from_server.get(&level) else {
                    return;
                };
                if let Some(p) = self.pending.get(&seq) {
                    p.upcall.deliver(val, local);
                }
                if closing {
                    self.pending.remove(&seq);
                }
            }
            NetMsg::SpecFailed { client, seq } if client == self.cfg.client_id => {
                if let Some(p) = self.pending.remove(&seq) {
                    p.upcall.fail(Error::Unavailable(
                        "server refused the submission (unknown or unserved level)".into(),
                    ));
                }
            }
            // Anything else: not ours, or not client-bound. Drop.
            _ => {}
        }
    }
}
