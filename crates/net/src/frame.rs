//! Length-prefixed framing over a byte stream.
//!
//! Every message on a connection travels as one frame:
//!
//! ```text
//! ┌────────────┬─────────┬──────────────────────────┐
//! │ len: u32 LE│ ver: u8 │ body: len-1 bytes        │
//! └────────────┴─────────┴──────────────────────────┘
//! ```
//!
//! `len` counts everything after itself (version byte + body), so a
//! reader can skip a frame it cannot parse. `ver` is the *message's*
//! minimum wire version ([`Wire::min_wire_version`]) — a message every
//! peer understands travels in the oldest frame that can carry it, so
//! mixed-version deployments interoperate on the shared message subset.
//! A receiver accepts [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`] and
//! rejects anything outside instead of misparsing it. The body is one
//! [`Wire`]-encoded message, decoded with exact-length consumption
//! (trailing bytes are an error).

use std::io::{self, Read, Write};

use crate::wire::{Reader, Wire, WireError, MIN_WIRE_VERSION, WIRE_VERSION};

/// Hard cap on a frame's announced length. Nothing this protocol sends
/// comes near it; a peer announcing more is corrupt or hostile and the
/// connection is dropped.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// What went wrong reading a frame from a stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including mid-frame EOF).
    Io(io::Error),
    /// The frame arrived intact but its body failed to decode.
    Wire(WireError),
    /// The announced length exceeded [`MAX_FRAME`].
    Oversized {
        /// The announced length.
        len: u32,
    },
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "stream error: {e}"),
            FrameError::Wire(e) => write!(f, "frame decode error: {e}"),
            FrameError::Oversized { len } => {
                write!(f, "frame announces {len} bytes (cap {MAX_FRAME})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes `msg` as one complete frame (header + body) into `scratch`,
/// clearing it first. The result is ready for a single `write_all`.
pub fn encode_frame<T: Wire>(msg: &T, scratch: &mut Vec<u8>) {
    scratch.clear();
    // Reserve the length slot, then encode in place. The version byte is
    // the oldest version that understands *this* message, not the newest
    // this build speaks — see the module docs.
    scratch.extend_from_slice(&[0, 0, 0, 0, msg.min_wire_version()]);
    msg.encode(scratch);
    let len = (scratch.len() - 4) as u32;
    scratch[..4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes `msg` as one frame into `scratch` (cleared first) and writes
/// it to `w` with a single `write_all` call, so concurrent writers on a
/// duplicated stream never interleave partial frames.
pub fn write_frame<T: Wire>(w: &mut impl Write, msg: &T, scratch: &mut Vec<u8>) -> io::Result<()> {
    encode_frame(msg, scratch);
    w.write_all(scratch)
}

/// Reads one frame from `r`, reusing `scratch` for the body.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer
/// closed between messages); EOF mid-frame is an [`FrameError::Io`]
/// error like any other truncation.
pub fn read_frame<T: Wire>(
    r: &mut impl Read,
    scratch: &mut Vec<u8>,
) -> Result<Option<T>, FrameError> {
    let mut len_bytes = [0u8; 4];
    // Distinguish "no more frames" from "died mid-frame" on the first
    // byte of the length prefix.
    match r.read(&mut len_bytes[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            return read_frame(r, scratch);
        }
        Err(e) => return Err(e.into()),
    }
    r.read_exact(&mut len_bytes[1..])?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len });
    }
    if len == 0 {
        return Err(WireError::Truncated.into());
    }
    scratch.clear();
    scratch.resize(len as usize, 0);
    r.read_exact(scratch)?;
    let ver = scratch[0];
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&ver) {
        return Err(WireError::BadVersion { got: ver }.into());
    }
    Ok(Some(Reader::new(&scratch[1..]).finish()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::NetMsg;
    use quorumstore::types::{Key, OpId, ReadKind};
    use quorumstore::Msg;
    use simnet::NodeId;
    use std::io::Cursor;

    fn msg() -> Msg {
        Msg::ClientRead {
            op: OpId {
                client: NodeId(1),
                seq: 2,
            },
            key: Key::plain(3),
            kind: ReadKind::Single { r: 1 },
        }
    }

    #[test]
    fn frame_round_trips_and_eof_is_clean() {
        let mut bytes = Vec::new();
        let mut scratch = Vec::new();
        write_frame(&mut bytes, &msg(), &mut scratch).unwrap();
        write_frame(&mut bytes, &msg(), &mut scratch).unwrap();
        let mut cur = Cursor::new(bytes);
        let mut buf = Vec::new();
        assert!(read_frame::<Msg>(&mut cur, &mut buf).unwrap().is_some());
        assert!(read_frame::<Msg>(&mut cur, &mut buf).unwrap().is_some());
        assert!(read_frame::<Msg>(&mut cur, &mut buf).unwrap().is_none());
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut bytes = Vec::new();
        let mut scratch = Vec::new();
        write_frame(&mut bytes, &msg(), &mut scratch).unwrap();
        bytes.truncate(bytes.len() - 1);
        let mut cur = Cursor::new(bytes);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame::<Msg>(&mut cur, &mut buf),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = Vec::new();
        let mut scratch = Vec::new();
        write_frame(&mut bytes, &msg(), &mut scratch).unwrap();
        bytes[4] = 9; // clobber the version byte
        let mut cur = Cursor::new(bytes);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame::<Msg>(&mut cur, &mut buf),
            Err(FrameError::Wire(WireError::BadVersion { got: 9 }))
        ));
    }

    #[test]
    fn frames_carry_each_messages_minimum_version() {
        // Version-1-compatible messages travel in version-1 frames —
        // bare Msg and its NetMsg::Store envelope identically — while a
        // version-2-only message is stamped 2 so an old peer rejects it
        // cleanly instead of misparsing it.
        let mut bytes = Vec::new();
        let mut scratch = Vec::new();
        write_frame(&mut bytes, &msg(), &mut scratch).unwrap();
        assert_eq!(bytes[4], 1);
        let mut wrapped = Vec::new();
        write_frame(&mut wrapped, &NetMsg::Store(msg()), &mut scratch).unwrap();
        assert_eq!(wrapped, bytes, "Store envelope must be byte-identical");
        let mut hello = Vec::new();
        write_frame(&mut hello, &NetMsg::Hello { client: 7 }, &mut scratch).unwrap();
        assert_eq!(hello[4], 2);
    }

    #[test]
    fn version_1_frames_decode_as_store_envelopes() {
        // A frame from a version-1 peer decodes on a version-2 reader.
        let mut bytes = Vec::new();
        let mut scratch = Vec::new();
        write_frame(&mut bytes, &msg(), &mut scratch).unwrap();
        let mut cur = Cursor::new(bytes);
        let mut buf = Vec::new();
        let got = read_frame::<NetMsg>(&mut cur, &mut buf).unwrap().unwrap();
        assert_eq!(got, NetMsg::Store(msg()));
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut bytes = (MAX_FRAME + 1).to_le_bytes().to_vec();
        bytes.push(1);
        let mut cur = Cursor::new(bytes);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame::<Msg>(&mut cur, &mut buf),
            Err(FrameError::Oversized { .. })
        ));
    }
}
