//! A quorum-store replica served over real TCP sockets.
//!
//! [`ReplicaServer`] speaks exactly the protocol of the simulated
//! [`quorumstore::Replica`] — the same [`quorumstore::Msg`] set, the same
//! coordinator roles, the same preliminary-flush and confirmation
//! behaviour — but over the wire codec of this crate, so an unmodified
//! Correctables client drives it through [`crate::TcpBinding`].
//!
//! One deliberate divergence from the simulated replica: the simulator
//! sends peer reads to exactly the `R-1` nearest peers (it knows the
//! topology), while this server fans the peer read out to **all** peers
//! and completes at the first `R-1` responses. Over a real network that
//! is what keeps an `R = 2` read available when one of three replicas is
//! down — the whole point of running a quorum system on sockets.
//!
//! The protocol state machine itself lives in `crate::protocol` and is
//! shared verbatim between the two I/O engines this module can serve it
//! with ([`Transport`]): the epoll reactor (default; see
//! [`crate::reactor`]) and the legacy blocking engine, where protocol
//! state lives on a single event-loop thread fed by the
//! reader/writer thread pairs of [`crate::transport`].

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::{Egress, ReplicaCore};
use crate::pump::{recv_step, Step};
use crate::reactor::backoff::{Backoff, Sleeper, ThreadSleeper};
use crate::transport::{spawn_reader, Outbound, Transport};
use crate::wire::NetMsg;

/// Tuning knobs of a TCP replica.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// This replica's id: the writer tiebreak in LWW versions and the
    /// client half of the op ids it mints for peer traffic. Must be
    /// unique across the replica set.
    pub id: u32,
    /// Deadline for gathering quorums before failing an operation back
    /// to the client.
    pub op_timeout: Duration,
    /// Base delay between reconnection attempts to an unreachable peer;
    /// doubles per consecutive failure up to [`ServerConfig::peer_retry_cap`].
    pub peer_retry: Duration,
    /// Ceiling on the peer-reconnect backoff.
    pub peer_retry_cap: Duration,
    /// Which I/O engine serves the sockets.
    pub transport: Transport,
    /// Reactor event loops for client traffic (ignored by the blocking
    /// engine). One loop suffices below ~10k connections per replica;
    /// more loops spread the epoll and parse work across cores.
    pub loops: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            id: 0,
            op_timeout: Duration::from_secs(5),
            peer_retry: Duration::from_millis(200),
            peer_retry_cap: Duration::from_secs(5),
            transport: Transport::default(),
            loops: 1,
        }
    }
}

pub(crate) enum Event {
    /// A connection was accepted or dialed; register its outbound half.
    Opened { conn: u64, out: Outbound },
    /// A message arrived on connection `conn`.
    Inbound { conn: u64, msg: NetMsg },
    /// Connection `conn` closed (either direction, any reason).
    Closed { conn: u64 },
    /// The dialer (re)established the connection to peer `peer`.
    PeerUp { peer: usize, out: Outbound },
    /// The connection to peer `peer` was lost.
    PeerDown { peer: usize },
    /// Stop serving: close every socket and exit the event loop.
    Shutdown,
}

/// A bound-but-not-yet-serving replica. Binding first and starting
/// second lets a deployment bind every listener (learning the ephemeral
/// ports), then start each replica with the full peer address list.
pub struct ReplicaServer {
    listener: TcpListener,
    cfg: ServerConfig,
}

impl ReplicaServer {
    /// Binds the listening socket. `127.0.0.1:0` picks an ephemeral port;
    /// read it back with [`ReplicaServer::local_addr`].
    pub fn bind(addr: &str, cfg: ServerConfig) -> io::Result<ReplicaServer> {
        Ok(ReplicaServer {
            listener: TcpListener::bind(addr)?,
            cfg,
        })
    }

    /// The address the replica is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            // lint: allow(panic_path) — setup API, called before serving starts
            .expect("bound socket has an addr")
    }

    /// Starts serving on the configured [`Transport`]. `peers` lists the
    /// *other* replicas.
    pub fn start(self, peers: Vec<SocketAddr>) -> ReplicaHandle {
        match self.cfg.transport {
            Transport::Reactor => crate::reactor::server::start(self.listener, self.cfg, peers),
            Transport::Blocking => self.start_blocking(peers),
        }
    }

    /// The blocking engine: an accept thread, one dialer per peer, and
    /// the event-loop thread, with a reader/writer thread pair per
    /// socket.
    fn start_blocking(self, peers: Vec<SocketAddr>) -> ReplicaHandle {
        let addr = self.local_addr();
        let (tx, rx) = mpsc::channel::<Event>();
        let stop = Arc::new(AtomicBool::new(false));

        // Accept thread: blocks on accept(), handing each connection a
        // reader/writer pair wired into the event loop.
        {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            // lint: allow(panic_path) — startup, nothing is serving yet
            let listener = self.listener.try_clone().expect("clone listener");
            let id = self.cfg.id;
            std::thread::Builder::new()
                .name(format!("icg-replicad-{id}-accept"))
                .spawn(move || {
                    let mut next_conn: u64 = 0;
                    while let Ok((stream, _)) = listener.accept() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let conn = next_conn;
                        next_conn += 1;
                        register_conn(stream, conn, &tx, &format!("r{id}c{conn}"));
                    }
                })
                // lint: allow(panic_path) — startup, nothing is serving yet
                .expect("spawn accept thread");
        }

        // Peer dialers: one thread per peer keeping the outbound replica
        // link alive, with jittered exponential backoff between attempts
        // so a downed replica costs its peers a couple of wakeups per
        // cap-interval instead of a spinning core.
        for (peer_idx, peer_addr) in peers.iter().copied().enumerate() {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            let cfg = self.cfg;
            std::thread::Builder::new()
                .name(format!("icg-replicad-{}-dial-{peer_idx}", cfg.id))
                .spawn(move || dial_peer_loop(cfg, peer_idx, peer_addr, tx, stop, &ThreadSleeper))
                // lint: allow(panic_path) — startup, nothing is serving yet
                .expect("spawn dialer thread");
        }

        // The event loop: all protocol state lives here.
        {
            let cfg = self.cfg;
            let n_peers = peers.len();
            let id = cfg.id;
            std::thread::Builder::new()
                .name(format!("icg-replicad-{id}-loop"))
                .spawn(move || ReplicaLoop::new(cfg, n_peers).run(rx))
                // lint: allow(panic_path) — startup, nothing is serving yet
                .expect("spawn event loop");
        }

        ReplicaHandle {
            addr,
            inner: HandleInner::Blocking {
                tx,
                stop,
                listener: self.listener,
            },
        }
    }
}

/// One peer dialer: keeps the outbound link to `peer_addr` alive,
/// backing off exponentially (with jitter) while the peer is down and
/// resetting the schedule on every successful connection.
fn dial_peer_loop(
    cfg: ServerConfig,
    peer_idx: usize,
    peer_addr: SocketAddr,
    tx: Sender<Event>,
    stop: Arc<AtomicBool>,
    sleeper: &impl Sleeper,
) {
    // Seeded per (replica, peer) so a whole cluster restarting against
    // one dead node spreads its retry times instead of thundering.
    let seed = ((cfg.id as u64) << 32) ^ peer_idx as u64;
    let mut backoff = Backoff::new(cfg.peer_retry, cfg.peer_retry_cap, seed);
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let stream = match TcpStream::connect_timeout(&peer_addr, Duration::from_millis(500)) {
            Ok(s) => s,
            Err(_) => {
                sleeper.sleep(backoff.next_delay());
                continue;
            }
        };
        let label = format!("r{}p{peer_idx}", cfg.id);
        let Ok(write_half) = stream.try_clone() else {
            sleeper.sleep(backoff.next_delay());
            continue;
        };
        let Ok(out) = Outbound::spawn(write_half, &label) else {
            sleeper.sleep(backoff.next_delay());
            continue;
        };
        if tx
            .send(Event::PeerUp {
                peer: peer_idx,
                out: out.clone(),
            })
            .is_err()
        {
            return;
        }
        // Feed peer responses into the same event loop (conn id
        // u64::MAX - peer: peer links never collide with accepted
        // conns, which count up).
        let (down_tx, down_rx) = mpsc::channel::<()>();
        let inbound = tx.clone();
        let closer = tx.clone();
        let spawned = spawn_reader::<NetMsg, _, _>(
            stream,
            &label,
            move |msg| {
                let _ = inbound.send(Event::Inbound {
                    conn: u64::MAX - peer_idx as u64,
                    msg,
                });
            },
            move |_reason| {
                let _ = closer.send(Event::PeerDown { peer: peer_idx });
                let _ = down_tx.send(());
            },
        );
        if spawned.is_err() {
            // No reader: treat the link as dead and retry.
            let _ = tx.send(Event::PeerDown { peer: peer_idx });
            sleeper.sleep(backoff.next_delay());
            continue;
        }
        // The link is up: the next outage restarts the schedule from
        // the base delay.
        backoff.reset();
        // Block until the link dies, then retry.
        let _ = down_rx.recv();
    }
}

/// Registers an accepted (or dialed) client connection: writer thread,
/// reader thread, `Opened`/`Inbound`/`Closed` events.
fn register_conn(stream: TcpStream, conn: u64, tx: &Sender<Event>, label: &str) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(out) = Outbound::spawn(stream, label) else {
        return;
    };
    if tx.send(Event::Opened { conn, out }).is_err() {
        return;
    }
    let inbound = tx.clone();
    let closer = tx.clone();
    let spawned = spawn_reader::<NetMsg, _, _>(
        read_half,
        label,
        move |msg| {
            let _ = inbound.send(Event::Inbound { conn, msg });
        },
        move |_reason| {
            let _ = closer.send(Event::Closed { conn });
        },
    );
    if spawned.is_err() {
        // No reader thread: the on_close closure was dropped unrun, so
        // report the close ourselves.
        let _ = tx.send(Event::Closed { conn });
    }
}

/// A running replica. Dropping the handle does **not** stop the server;
/// call [`ReplicaHandle::shutdown`] (the failover tests use it as the
/// crash switch).
pub struct ReplicaHandle {
    pub(crate) addr: SocketAddr,
    pub(crate) inner: HandleInner,
}

pub(crate) enum HandleInner {
    Blocking {
        tx: Sender<Event>,
        stop: Arc<AtomicBool>,
        listener: TcpListener,
    },
    Reactor {
        stop: Arc<AtomicBool>,
        shutdown: Box<dyn Fn() + Send + Sync>,
    },
}

impl ReplicaHandle {
    /// The address this replica serves on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the replica abruptly: the listener stops accepting, every
    /// open connection is closed, the event loop exits. In-flight
    /// operations are lost without replies — to a client this is
    /// indistinguishable from a crash, which is exactly what the
    /// failover tests need it to be.
    pub fn shutdown(&self) {
        match &self.inner {
            HandleInner::Blocking { tx, stop, listener } => {
                stop.store(true, Ordering::Release);
                let _ = tx.send(Event::Shutdown);
                // Unblock the accept loop with a throwaway connection; it
                // checks the stop flag right after accept returns.
                let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
                // Closing our listener clone is not enough on all platforms
                // while the accept thread holds its own clone, but the flag
                // + wakeup pair guarantees the thread exits either way.
                let _ = listener.set_nonblocking(true);
            }
            HandleInner::Reactor { stop, shutdown } => {
                stop.store(true, Ordering::Release);
                shutdown();
            }
        }
    }
}

/// The blocking engine's event loop: the shared [`ReplicaCore`] plus the
/// [`Outbound`]-handle connection table it sends through.
struct ReplicaLoop {
    core: ReplicaCore,
    net: BlockingNet,
}

/// The blocking engine's view of the network: an [`Egress`] over
/// per-connection writer-thread handles.
struct BlockingNet {
    conns: HashMap<u64, Outbound>,
    peer_links: Vec<Option<Outbound>>,
}

impl Egress for BlockingNet {
    fn to_client(&mut self, conn: u64, msg: &NetMsg) {
        if let Some(out) = self.conns.get(&conn) {
            out.send(msg);
        }
    }

    fn to_peers(&mut self, msg: &NetMsg) {
        for link in self.peer_links.iter().flatten() {
            link.send(msg);
        }
    }
}

impl ReplicaLoop {
    fn new(cfg: ServerConfig, n_peers: usize) -> ReplicaLoop {
        ReplicaLoop {
            core: ReplicaCore::new(cfg.id, cfg.op_timeout, n_peers),
            net: BlockingNet {
                conns: HashMap::new(),
                peer_links: vec![None; n_peers],
            },
        }
    }

    fn run(mut self, rx: Receiver<Event>) {
        loop {
            // Wait for the next event or the next op deadline, whichever
            // comes first.
            let event = match recv_step(&rx, self.core.next_deadline()) {
                Step::Event(e) => e,
                Step::Expired => {
                    self.core.fire_expired(&mut self.net);
                    continue;
                }
                Step::Closed => break,
            };
            match event {
                Event::Opened { conn, out } => {
                    self.net.conns.insert(conn, out);
                }
                Event::Inbound { conn, msg } => self.core.on_net(&mut self.net, conn, msg),
                Event::Closed { conn } => {
                    self.net.conns.remove(&conn);
                }
                Event::PeerUp { peer, out } => {
                    if let Some(slot) = self.net.peer_links.get_mut(peer) {
                        *slot = Some(out);
                    }
                    self.core.on_peer_up(&mut self.net);
                }
                Event::PeerDown { peer } => {
                    if let Some(slot) = self.net.peer_links.get_mut(peer) {
                        *slot = None;
                    }
                }
                Event::Shutdown => break,
            }
        }
        for (_, out) in self.net.conns.drain() {
            out.kill();
        }
        for link in self.net.peer_links.iter().flatten() {
            link.kill();
        }
    }
}

/// Binds and starts a full replica set on loopback ephemeral ports:
/// binds all listeners first (so every replica learns every address),
/// then starts each one with the other replicas as peers. Returns the
/// handles in id order.
pub fn spawn_local_cluster(n: usize, cfg_of: impl Fn(u32) -> ServerConfig) -> Vec<ReplicaHandle> {
    let servers: Vec<ReplicaServer> = (0..n)
        // lint: allow(panic_path) — cluster bootstrap helper, pre-serving
        .map(|i| ReplicaServer::bind("127.0.0.1:0", cfg_of(i as u32)).expect("bind loopback"))
        .collect();
    let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    servers
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let peers: Vec<SocketAddr> = addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| *a)
                .collect();
            s.start(peers)
        })
        .collect()
}
