//! A quorum-store replica served over real TCP sockets.
//!
//! [`ReplicaServer`] speaks exactly the protocol of the simulated
//! [`quorumstore::Replica`] — the same [`Msg`] set, the same
//! coordinator roles, the same preliminary-flush and confirmation
//! behaviour — but over the wire codec and blocking transport of this
//! crate, so an unmodified Correctables client drives it through
//! [`crate::TcpBinding`].
//!
//! One deliberate divergence from the simulated replica: the simulator
//! sends peer reads to exactly the `R-1` nearest peers (it knows the
//! topology), while this server fans the peer read out to **all** peers
//! and completes at the first `R-1` responses. Over a real network that
//! is what keeps an `R = 2` read available when one of three replicas is
//! down — the whole point of running a quorum system on sockets.
//!
//! Protocol state lives on a single event-loop thread per replica; every
//! socket is handled by the reader/writer thread pair of
//! [`crate::transport`]. The loop owns the storage map, the pending
//! read/write tables, and a deadline heap for operation timeouts, and it
//! never shares any of them — messages in, messages out.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use quorumstore::messages::{FailReason, Msg, Phase};
use quorumstore::storage::LocalStore;
use quorumstore::types::{Key, OpId, ReadKind, Version, Versioned};
use simnet::NodeId;

use crate::pump::{recv_step, Deadlines, Step};
use crate::transport::{spawn_reader, Outbound};

/// Tuning knobs of a TCP replica.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// This replica's id: the writer tiebreak in LWW versions and the
    /// client half of the op ids it mints for peer traffic. Must be
    /// unique across the replica set.
    pub id: u32,
    /// Deadline for gathering quorums before failing an operation back
    /// to the client.
    pub op_timeout: Duration,
    /// Delay between reconnection attempts to an unreachable peer.
    pub peer_retry: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            id: 0,
            op_timeout: Duration::from_secs(5),
            peer_retry: Duration::from_millis(200),
        }
    }
}

enum Event {
    /// A connection was accepted or dialed; register its outbound half.
    Opened { conn: u64, out: Outbound },
    /// A message arrived on connection `conn`.
    Inbound { conn: u64, msg: Msg },
    /// Connection `conn` closed (either direction, any reason).
    Closed { conn: u64 },
    /// The dialer (re)established the connection to peer `peer`.
    PeerUp { peer: usize, out: Outbound },
    /// The connection to peer `peer` was lost.
    PeerDown { peer: usize },
    /// Stop serving: close every socket and exit the event loop.
    Shutdown,
}

struct ReadSt {
    client_conn: u64,
    client_op: OpId,
    kind: ReadKind,
    key: Key,
    best: Versioned,
    responses: u8,
    needed: u8,
    prelim: Option<Version>,
}

struct WriteSt {
    client_conn: u64,
    client_op: OpId,
    acks_left: u8,
}

/// A bound-but-not-yet-serving replica. Binding first and starting
/// second lets a deployment bind every listener (learning the ephemeral
/// ports), then start each replica with the full peer address list.
pub struct ReplicaServer {
    listener: TcpListener,
    cfg: ServerConfig,
}

impl ReplicaServer {
    /// Binds the listening socket. `127.0.0.1:0` picks an ephemeral port;
    /// read it back with [`ReplicaServer::local_addr`].
    pub fn bind(addr: &str, cfg: ServerConfig) -> io::Result<ReplicaServer> {
        Ok(ReplicaServer {
            listener: TcpListener::bind(addr)?,
            cfg,
        })
    }

    /// The address the replica is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            // lint: allow(panic_path) — setup API, called before serving starts
            .expect("bound socket has an addr")
    }

    /// Starts serving: spawns the accept reactor, one dialer per peer,
    /// and the event-loop thread. `peers` lists the *other* replicas.
    pub fn start(self, peers: Vec<SocketAddr>) -> ReplicaHandle {
        let addr = self.local_addr();
        let (tx, rx) = mpsc::channel::<Event>();
        let stop = Arc::new(AtomicBool::new(false));

        // Accept reactor: one thread blocking on accept(), handing each
        // connection a reader/writer pair wired into the event loop.
        {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            // lint: allow(panic_path) — startup, nothing is serving yet
            let listener = self.listener.try_clone().expect("clone listener");
            let id = self.cfg.id;
            std::thread::Builder::new()
                .name(format!("icg-replicad-{id}-accept"))
                .spawn(move || {
                    let mut next_conn: u64 = 0;
                    while let Ok((stream, _)) = listener.accept() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let conn = next_conn;
                        next_conn += 1;
                        register_conn(stream, conn, &tx, &format!("r{id}c{conn}"));
                    }
                })
                // lint: allow(panic_path) — startup, nothing is serving yet
                .expect("spawn accept thread");
        }

        // Peer dialers: one thread per peer keeping the outbound replica
        // link alive with bounded retry.
        for (peer_idx, peer_addr) in peers.iter().copied().enumerate() {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            let retry = self.cfg.peer_retry;
            let id = self.cfg.id;
            std::thread::Builder::new()
                .name(format!("icg-replicad-{id}-dial-{peer_idx}"))
                .spawn(move || loop {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    match TcpStream::connect_timeout(&peer_addr, Duration::from_millis(500)) {
                        Ok(stream) => {
                            let label = format!("r{id}p{peer_idx}");
                            let write_half = match stream.try_clone() {
                                Ok(s) => s,
                                Err(_) => {
                                    std::thread::sleep(retry);
                                    continue;
                                }
                            };
                            let out = match Outbound::spawn(write_half, &label) {
                                Ok(o) => o,
                                Err(_) => continue,
                            };
                            if tx
                                .send(Event::PeerUp {
                                    peer: peer_idx,
                                    out: out.clone(),
                                })
                                .is_err()
                            {
                                return;
                            }
                            // Feed peer responses into the same event loop
                            // (conn id u64::MAX - peer: peer links never
                            // collide with accepted conns, which count up).
                            let (down_tx, down_rx) = mpsc::channel::<()>();
                            let inbound = tx.clone();
                            let closer = tx.clone();
                            let spawned = spawn_reader::<Msg, _, _>(
                                stream,
                                &label,
                                move |msg| {
                                    let _ = inbound.send(Event::Inbound {
                                        conn: u64::MAX - peer_idx as u64,
                                        msg,
                                    });
                                },
                                move |_reason| {
                                    let _ = closer.send(Event::PeerDown { peer: peer_idx });
                                    let _ = down_tx.send(());
                                },
                            );
                            if spawned.is_err() {
                                // No reader: treat the link as dead and retry.
                                let _ = tx.send(Event::PeerDown { peer: peer_idx });
                                std::thread::sleep(retry);
                                continue;
                            }
                            // Block until the link dies, then retry.
                            let _ = down_rx.recv();
                        }
                        Err(_) => {
                            std::thread::sleep(retry);
                        }
                    }
                })
                // lint: allow(panic_path) — startup, nothing is serving yet
                .expect("spawn dialer thread");
        }

        // The event loop: all protocol state lives here.
        {
            let cfg = self.cfg;
            let n_peers = peers.len();
            let id = cfg.id;
            std::thread::Builder::new()
                .name(format!("icg-replicad-{id}-loop"))
                .spawn(move || ReplicaLoop::new(cfg, n_peers).run(rx))
                // lint: allow(panic_path) — startup, nothing is serving yet
                .expect("spawn event loop");
        }

        ReplicaHandle {
            addr,
            tx,
            stop,
            listener: self.listener,
        }
    }
}

/// Registers an accepted (or dialed) client connection: writer thread,
/// reader thread, `Opened`/`Inbound`/`Closed` events.
fn register_conn(stream: TcpStream, conn: u64, tx: &Sender<Event>, label: &str) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(out) = Outbound::spawn(stream, label) else {
        return;
    };
    if tx.send(Event::Opened { conn, out }).is_err() {
        return;
    }
    let inbound = tx.clone();
    let closer = tx.clone();
    let spawned = spawn_reader::<Msg, _, _>(
        read_half,
        label,
        move |msg| {
            let _ = inbound.send(Event::Inbound { conn, msg });
        },
        move |_reason| {
            let _ = closer.send(Event::Closed { conn });
        },
    );
    if spawned.is_err() {
        // No reader thread: the on_close closure was dropped unrun, so
        // report the close ourselves.
        let _ = tx.send(Event::Closed { conn });
    }
}

/// A running replica. Dropping the handle does **not** stop the server;
/// call [`ReplicaHandle::shutdown`] (the failover tests use it as the
/// crash switch).
pub struct ReplicaHandle {
    addr: SocketAddr,
    tx: Sender<Event>,
    stop: Arc<AtomicBool>,
    listener: TcpListener,
}

impl ReplicaHandle {
    /// The address this replica serves on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the replica abruptly: the listener stops accepting, every
    /// open connection is closed, the event loop exits. In-flight
    /// operations are lost without replies — to a client this is
    /// indistinguishable from a crash, which is exactly what the
    /// failover tests need it to be.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.tx.send(Event::Shutdown);
        // Unblock the accept loop with a throwaway connection; it checks
        // the stop flag right after accept returns.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        // Closing our listener clone is not enough on all platforms while
        // the accept thread holds its own clone, but the flag + wakeup
        // pair guarantees the thread exits either way.
        let _ = self.listener.set_nonblocking(true);
    }
}

struct ReplicaLoop {
    cfg: ServerConfig,
    store: LocalStore,
    conns: HashMap<u64, Outbound>,
    peer_links: Vec<Option<Outbound>>,
    reads: HashMap<u64, ReadSt>,
    writes: HashMap<u64, WriteSt>,
    /// Monotone source of internal op ids (the `seq` of op ids this
    /// coordinator mints for peer traffic).
    next_internal: u64,
    /// Operation deadlines, soonest first.
    deadlines: Deadlines<u64>,
}

impl ReplicaLoop {
    fn new(cfg: ServerConfig, n_peers: usize) -> ReplicaLoop {
        ReplicaLoop {
            cfg,
            store: LocalStore::new(),
            conns: HashMap::new(),
            peer_links: vec![None; n_peers],
            reads: HashMap::new(),
            writes: HashMap::new(),
            next_internal: 0,
            deadlines: Deadlines::new(),
        }
    }

    fn run(mut self, rx: Receiver<Event>) {
        loop {
            // Wait for the next event or the next op deadline, whichever
            // comes first.
            let reads = &self.reads;
            let writes = &self.writes;
            let next = self.deadlines.next_live(|internal| {
                reads.contains_key(internal) || writes.contains_key(internal)
            });
            let event = match recv_step(&rx, next) {
                Step::Event(e) => e,
                Step::Expired => {
                    self.fire_expired();
                    continue;
                }
                Step::Closed => break,
            };
            match event {
                Event::Opened { conn, out } => {
                    self.conns.insert(conn, out);
                }
                Event::Inbound { conn, msg } => self.on_msg(conn, msg),
                Event::Closed { conn } => {
                    self.conns.remove(&conn);
                }
                Event::PeerUp { peer, out } => {
                    if let Some(slot) = self.peer_links.get_mut(peer) {
                        *slot = Some(out);
                    }
                }
                Event::PeerDown { peer } => {
                    if let Some(slot) = self.peer_links.get_mut(peer) {
                        *slot = None;
                    }
                }
                Event::Shutdown => break,
            }
        }
        for (_, out) in self.conns.drain() {
            out.kill();
        }
        for link in self.peer_links.iter().flatten() {
            link.kill();
        }
    }

    fn fire_expired(&mut self) {
        let mut failed = Vec::new();
        let reads = &mut self.reads;
        let writes = &mut self.writes;
        self.deadlines.fire_expired(Instant::now(), |internal| {
            let hit = reads
                .remove(&internal)
                .map(|st| (st.client_conn, st.client_op))
                .or_else(|| {
                    writes
                        .remove(&internal)
                        .map(|st| (st.client_conn, st.client_op))
                });
            failed.extend(hit);
        });
        for (conn, op) in failed {
            self.send_to(
                conn,
                &Msg::OpFailed {
                    op,
                    reason: FailReason::Timeout,
                },
            );
        }
    }

    fn now_version(&self) -> Version {
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Version {
            ts,
            writer: self.cfg.id,
        }
    }

    fn mint_internal(&mut self) -> (u64, OpId) {
        let internal = self.next_internal;
        self.next_internal += 1;
        // Peer traffic op ids: this replica's id in the client slot, the
        // internal counter in the sequence slot. Unique per coordinator,
        // and coordinators' ids are unique per deployment.
        (
            internal,
            OpId {
                client: NodeId(self.cfg.id as usize),
                seq: internal,
            },
        )
    }

    fn send_to(&self, conn: u64, msg: &Msg) {
        if let Some(out) = self.conns.get(&conn) {
            out.send(msg);
        }
    }

    fn broadcast_peers(&self, msg: &Msg) {
        for link in self.peer_links.iter().flatten() {
            link.send(msg);
        }
    }

    fn arm(&mut self, internal: u64) {
        self.deadlines
            .arm(Instant::now() + self.cfg.op_timeout, internal);
    }

    fn on_msg(&mut self, conn: u64, msg: Msg) {
        match msg {
            Msg::ClientRead { op, key, kind } => self.client_read(conn, op, key, kind),
            Msg::ClientWrite { op, key, value, w } => self.client_write(conn, op, key, value, w),
            Msg::PeerRead { op, key } => {
                let data = self.store.get(key);
                self.send_to(conn, &Msg::PeerReadResp { op, data });
            }
            Msg::PeerReadResp { op, data } => self.peer_read_resp(op, data),
            Msg::PeerWrite { key, data, ack_op } => {
                self.store.apply(key, data);
                if let Some(op) = ack_op {
                    self.send_to(conn, &Msg::PeerWriteAck { op });
                }
            }
            Msg::PeerWriteAck { op } => self.peer_write_ack(op),
            // Client-bound replies have no business arriving at a server;
            // drop them (a confused or hostile peer must not crash us).
            Msg::ReadReply { .. }
            | Msg::ReadConfirm { .. }
            | Msg::WriteReply { .. }
            | Msg::OpFailed { .. } => {}
        }
    }

    fn client_read(&mut self, conn: u64, client_op: OpId, key: Key, kind: ReadKind) {
        let local = self.store.get(key);
        let n_replicas = (self.peer_links.len() + 1) as u8;
        let needed = kind.quorum().clamp(1, n_replicas);

        let mut prelim = None;
        if kind.is_icg() {
            // Preliminary flush: leak local state before coordinating.
            prelim = Some(local.version);
            self.send_to(
                conn,
                &Msg::ReadReply {
                    op: client_op,
                    phase: Phase::Preliminary,
                    data: local.clone(),
                },
            );
        }

        if needed <= 1 {
            self.reply_read_final(conn, client_op, kind, prelim, local);
            return;
        }

        let (internal, peer_op) = self.mint_internal();
        // Fan out to every peer and complete at the first R-1 responses —
        // availability under a dead replica (see the module docs). Even
        // when too few links are currently live to ever reach the
        // quorum, the op stays pending: a peer may come back within the
        // timeout, and the deadline converts it into OpFailed otherwise.
        self.broadcast_peers(&Msg::PeerRead { op: peer_op, key });
        self.reads.insert(
            internal,
            ReadSt {
                client_conn: conn,
                client_op,
                kind,
                key,
                best: local,
                responses: 1,
                needed,
                prelim,
            },
        );
        self.arm(internal);
    }

    fn reply_read_final(
        &mut self,
        conn: u64,
        op: OpId,
        kind: ReadKind,
        prelim: Option<Version>,
        best: Versioned,
    ) {
        let msg = match kind {
            ReadKind::Icg { confirm: true, .. } if prelim == Some(best.version) => {
                Msg::ReadConfirm {
                    op,
                    version: best.version,
                }
            }
            ReadKind::Icg { .. } => Msg::ReadReply {
                op,
                phase: Phase::Final,
                data: best,
            },
            ReadKind::Single { .. } => Msg::ReadReply {
                op,
                phase: Phase::Single,
                data: best,
            },
        };
        self.send_to(conn, &msg);
    }

    fn peer_read_resp(&mut self, peer_op: OpId, data: Versioned) {
        // Only answers to our own requests are meaningful.
        if peer_op.client != NodeId(self.cfg.id as usize) {
            return;
        }
        let internal = peer_op.seq;
        let Some(st) = self.reads.get_mut(&internal) else {
            return; // late response after completion or timeout
        };
        st.responses += 1;
        if data.version > st.best.version {
            st.best = data;
        }
        if st.responses < st.needed {
            return;
        }
        let Some(st) = self.reads.remove(&internal) else {
            return;
        };
        // Adopt the winning version locally: later preliminary
        // flushes serve it, and convergence after quiescence holds
        // even if this coordinator missed the original write.
        if st.best.version > self.store.version_of(st.key) {
            self.store.apply(st.key, st.best.clone());
        }
        self.reply_read_final(st.client_conn, st.client_op, st.kind, st.prelim, st.best);
    }

    fn client_write(
        &mut self,
        conn: u64,
        client_op: OpId,
        key: Key,
        value: quorumstore::types::Value,
        w: u8,
    ) {
        let data = Versioned {
            value,
            version: self.now_version(),
        };
        self.store.apply(key, data.clone());
        let acks_needed = w.saturating_sub(1).min(self.peer_links.len() as u8);
        if acks_needed == 0 {
            // W = 1 (the paper's setting): acknowledge immediately,
            // propagate in the background.
            self.broadcast_peers(&Msg::PeerWrite {
                key,
                data,
                ack_op: None,
            });
            self.send_to(conn, &Msg::WriteReply { op: client_op });
            return;
        }
        let (internal, peer_op) = self.mint_internal();
        self.broadcast_peers(&Msg::PeerWrite {
            key,
            data,
            ack_op: Some(peer_op),
        });
        self.writes.insert(
            internal,
            WriteSt {
                client_conn: conn,
                client_op,
                acks_left: acks_needed,
            },
        );
        self.arm(internal);
    }

    fn peer_write_ack(&mut self, peer_op: OpId) {
        if peer_op.client != NodeId(self.cfg.id as usize) {
            return;
        }
        let internal = peer_op.seq;
        let finished = match self.writes.get_mut(&internal) {
            Some(st) => {
                st.acks_left = st.acks_left.saturating_sub(1);
                st.acks_left == 0
            }
            None => false,
        };
        if finished {
            if let Some(st) = self.writes.remove(&internal) {
                self.send_to(st.client_conn, &Msg::WriteReply { op: st.client_op });
            }
        }
    }
}

/// Binds and starts a full replica set on loopback ephemeral ports:
/// binds all listeners first (so every replica learns every address),
/// then starts each one with the other replicas as peers. Returns the
/// handles in id order.
pub fn spawn_local_cluster(n: usize, cfg_of: impl Fn(u32) -> ServerConfig) -> Vec<ReplicaHandle> {
    let servers: Vec<ReplicaServer> = (0..n)
        // lint: allow(panic_path) — cluster bootstrap helper, pre-serving
        .map(|i| ReplicaServer::bind("127.0.0.1:0", cfg_of(i as u32)).expect("bind loopback"))
        .collect();
    let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    servers
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let peers: Vec<SocketAddr> = addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| *a)
                .collect();
            s.start(peers)
        })
        .collect()
}
