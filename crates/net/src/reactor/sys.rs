//! Raw `epoll`/`eventfd` bindings and their minimal safe wrappers.
//!
//! The workspace builds fully offline, so there is no `libc` crate to
//! lean on; the four syscall entry points the reactor needs are declared
//! here directly against the C library that `std` already links on
//! every Linux target. Everything above this module is safe code: the
//! file descriptors live in [`OwnedFd`]/[`File`] so they close on drop,
//! and the `unsafe` blocks are confined to the FFI calls themselves.

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

/// Readable (or a pending accept on a listener).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable again after a short write.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition; always delivered, never registered.
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hangup; always delivered, never registered.
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery: one event per readiness *transition*, so
/// the loop must drain to `WouldBlock` every time it is told.
pub(crate) const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One readiness record, ABI-compatible with the kernel's
/// `struct epoll_event`. The kernel packs it on x86-64 (12 bytes, no
/// padding between `events` and `data`); other architectures use the
/// natural C layout.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The token the fd was registered with.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

/// A safe handle on one epoll instance.
pub(crate) struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Creates the epoll instance (`CLOEXEC`).
    pub(crate) fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // an error, a non-negative one is a fresh fd this process owns.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` was just returned by epoll_create1 and nothing
        // else holds it; OwnedFd takes over closing it.
        let epfd = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Poller { epfd })
    }

    /// Registers `fd` with interest `events`, tagging readiness records
    /// with `token`.
    pub(crate) fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live stack value for the duration of the
        // call; the kernel copies it before returning.
        let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Removes `fd` from the interest set. Errors are ignored: the fd
    /// may already be gone (closing an fd deregisters it implicitly).
    pub(crate) fn del(&self, fd: RawFd) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `add`; a stale fd only makes the call fail.
        let _ = unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Waits for readiness, filling `events` (cleared first). `None`
    /// blocks indefinitely; a zero or sub-millisecond timeout polls.
    /// Returns the number of records, retrying transparently on EINTR.
    pub(crate) fn wait(
        &self,
        events: &mut Vec<EpollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        const CAP: usize = 256;
        events.clear();
        events.reserve(CAP);
        let ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a 0.4 ms deadline doesn't spin at 0.
                let ms = d.as_millis();
                let ms = if d.subsec_nanos() % 1_000_000 != 0 {
                    ms + 1
                } else {
                    ms
                };
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        let epfd = self.epfd.as_raw_fd();
        loop {
            // SAFETY: the spare capacity reserved above is valid for CAP
            // records; the kernel writes at most `maxevents` of them and
            // returns how many, which bounds the set_len below.
            let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), CAP as i32, ms) };
            if n >= 0 {
                // SAFETY: the kernel initialized exactly `n` records
                // (n <= CAP, which is reserved).
                unsafe { events.set_len(n as usize) };
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// A nonblocking `eventfd` used to kick an event loop out of
/// `epoll_wait` when another thread enqueues work for it.
pub(crate) struct WakeFd {
    file: File,
}

impl WakeFd {
    /// Creates the eventfd (`CLOEXEC | NONBLOCK`).
    pub(crate) fn new() -> io::Result<WakeFd> {
        // SAFETY: eventfd takes no pointers; non-negative return is a
        // fresh fd this process owns.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` was just returned by eventfd and nothing else
        // holds it; File takes over closing it.
        let file = unsafe { File::from_raw_fd(fd) };
        Ok(WakeFd { file })
    }

    /// The fd to register with a [`Poller`].
    pub(crate) fn raw(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Makes the fd readable, waking a blocked `epoll_wait`. Failure is
    /// ignored: `EAGAIN` means the counter is already nonzero, which is
    /// a wake-up already in flight.
    pub(crate) fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = (&self.file).write(&one);
    }

    /// Consumes the pending wake-ups so the fd goes quiet until the
    /// next [`WakeFd::wake`].
    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 8];
        // One read returns-and-resets the whole counter; loop anyway in
        // case a wake lands between the read and the return.
        while (&self.file).read(&mut buf).is_ok() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn wakefd_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let wake = WakeFd::new().unwrap();
        poller.add(wake.raw(), 7, EPOLLIN).unwrap();
        let mut events = Vec::new();

        // Nothing pending: a short wait times out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0);

        wake.wake();
        wake.wake();
        let n = poller.wait(&mut events, None).unwrap();
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, 7);
        wake.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0, "drained eventfd must go quiet");
    }

    #[test]
    fn socket_readiness_is_edge_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 1, EPOLLIN | EPOLLRDHUP | EPOLLET)
            .unwrap();

        use std::io::Write as _;
        (&client).write_all(b"x").unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        let (token, bits) = (events[0].data, events[0].events);
        assert_eq!(token, 1);
        assert_ne!(bits & EPOLLIN, 0);

        // Edge-triggered: without reading the byte, no *new* edge means
        // no second event.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "ET must not re-report an unconsumed edge");

        // Deadline-style timeouts return promptly.
        let t0 = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(t0.elapsed() < Duration::from_secs(1));
    }
}
