//! icg-net v2: a dependency-free `epoll` reactor.
//!
//! The blocking transport ([`crate::transport`]) spends two OS threads
//! per socket; at production connection counts that is a wall — 10k
//! clients would mean 20k threads on each replica. This module replaces
//! it with a small number of event-loop threads, each owning an `epoll`
//! instance and a set of connections outright:
//!
//! - `sys` — the raw `epoll`/`eventfd` syscalls (hand-declared FFI;
//!   the workspace builds offline, so no `libc` crate) behind safe
//!   `Poller`/`WakeFd` wrappers.
//! - `conn` — the per-connection state machine: an edge-triggered
//!   drain-to-`WouldBlock` read path whose buffer the `Wire` codec
//!   decodes from zero-copy, and a capped write queue flushed with
//!   vectored writes.
//! - `event_loop` — the loop itself: readiness dispatch, a
//!   cross-thread command `Injector`, and the `Handler` trait protocols
//!   implement to live on a loop.
//! - [`backoff`] — bounded exponential backoff with deterministic
//!   jitter for the dialer threads that feed loops reconnections.
//! - `server` / [`client`] — `ReplicaServer` and `TcpBinding` ported
//!   onto the loops, behind the exact same public API and semantics as
//!   their blocking counterparts.
//!
//! The blocking transport remains selectable (`Transport::Blocking`)
//! for one release; the reactor is the default.

pub mod backoff;
pub mod client;
pub(crate) mod conn;
pub(crate) mod event_loop;
pub(crate) mod server;
pub(crate) mod sys;

pub use backoff::{Backoff, Sleeper, ThreadSleeper};
pub use client::ClientReactor;
