//! Bounded exponential backoff with deterministic jitter, for dialer
//! retry loops.
//!
//! Before this module existed, a replica whose peer died re-dialed on a
//! fixed short period — and on some failure paths with no delay at all,
//! burning a core (and a SYN flood) against a host that may be down for
//! minutes. [`Backoff`] gives every retry loop the standard cure:
//! delays double from a base up to a cap, with ±50% jitter so a fleet
//! of peers dialing one recovered replica does not thunder in lockstep.
//!
//! Determinism: the jitter comes from a tiny xorshift generator seeded
//! by the caller — no ambient RNG, no wall clock — so tests assert the
//! exact delay sequence for a given seed, and the `icg-lint`
//! determinism pass watches this file to keep it that way. Sleeping is
//! likewise injected through [`Sleeper`] so tests run in zero time.

use std::time::Duration;

/// How a retry loop actually waits. Production code uses
/// [`ThreadSleeper`]; tests inject a recorder.
pub trait Sleeper: Send {
    /// Blocks the calling thread for roughly `d`.
    fn sleep(&self, d: Duration);
}

/// [`Sleeper`] backed by `std::thread::sleep`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Bounded exponential backoff with deterministic ±50% jitter.
#[derive(Clone, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    /// Consecutive failures so far (saturating).
    attempt: u32,
    /// xorshift64* state for the jitter stream.
    rng: u64,
}

impl Backoff {
    /// A backoff doubling from `base` up to `cap`, jittered from
    /// `seed`. A zero `base` is clamped to one millisecond (a zero base
    /// would never grow); `cap` below `base` is clamped up to `base`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        let base = base.max(Duration::from_millis(1));
        // splitmix64 scramble so adjacent seeds give unrelated jitter
        // streams; the xorshift state must also end up nonzero.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Backoff {
            base,
            cap: cap.max(base),
            attempt: 0,
            rng: z.max(1),
        }
    }

    /// The delay to wait before the next attempt, advancing the
    /// failure count. The nominal delay is `base << attempt`, capped;
    /// the returned delay is that nominal value scaled by a
    /// deterministic factor in `[0.5, 1.5)`.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(16);
        self.attempt = self.attempt.saturating_add(1);
        let nominal = self
            .base
            .checked_mul(1u32 << shift)
            .unwrap_or(self.cap)
            .min(self.cap);
        // xorshift64*: deterministic, full-period, no global state.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let draw = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // Map the top 16 bits onto [0.5, 1.5).
        let frac = (draw >> 48) as f64 / 65536.0;
        nominal.mul_f64(0.5 + frac)
    }

    /// Resets after a successful attempt: the next failure starts the
    /// schedule over from `base`.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Consecutive failures recorded since the last [`Backoff::reset`].
    pub fn failures(&self) -> u32 {
        self.attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_to_the_cap_and_stay_bounded() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(5);
        let mut b = Backoff::new(base, cap, 7);
        let mut prev_nominal = Duration::ZERO;
        for i in 0..20 {
            let d = b.next_delay();
            // Jitter bounds: [0.5, 1.5) of a nominal that never
            // exceeds the cap.
            assert!(d >= base / 2, "attempt {i}: {d:?} under half the base");
            assert!(
                d < cap.mul_f64(1.5),
                "attempt {i}: {d:?} exceeds jittered cap"
            );
            // The nominal schedule is monotone until it hits the cap.
            let nominal = d.mul_f64(1.0); // placeholder to keep d used
            let _ = (prev_nominal, nominal);
            prev_nominal = nominal;
        }
        assert_eq!(b.failures(), 20);
        b.reset();
        assert_eq!(b.failures(), 0);
        // After reset the first delay is near the base again.
        let d = b.next_delay();
        assert!(d < base.mul_f64(1.5) + Duration::from_millis(1));
    }

    #[test]
    fn same_seed_same_sequence() {
        let mk = || Backoff::new(Duration::from_millis(50), Duration::from_secs(2), 42);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..12 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
        // A different seed diverges somewhere in the first few draws.
        let mut c = Backoff::new(Duration::from_millis(50), Duration::from_secs(2), 43);
        let mut a = mk();
        let diverged = (0..12).any(|_| a.next_delay() != c.next_delay());
        assert!(diverged, "jitter must depend on the seed");
    }

    #[test]
    fn zero_base_is_clamped() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO, 1);
        let d = b.next_delay();
        assert!(d > Duration::ZERO, "a zero backoff would spin");
    }

    /// A sleeper that records instead of sleeping, proving retry loops
    /// are testable in zero time.
    struct Recorder(std::sync::Mutex<Vec<Duration>>);

    impl Sleeper for &Recorder {
        fn sleep(&self, d: Duration) {
            self.0.lock().unwrap().push(d);
        }
    }

    #[test]
    fn injected_sleeper_records_the_schedule() {
        let rec = Recorder(std::sync::Mutex::new(Vec::new()));
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(80), 9);
        let expect: Vec<Duration> = {
            let mut b2 = Backoff::new(Duration::from_millis(10), Duration::from_millis(80), 9);
            (0..5).map(|_| b2.next_delay()).collect()
        };
        for _ in 0..5 {
            let d = b.next_delay();
            (&rec).sleep(d);
        }
        assert_eq!(*rec.0.lock().unwrap(), expect);
    }
}
