//! Client bindings multiplexed onto shared reactor loops.
//!
//! Where the blocking engine spends a loop thread plus a reader/writer
//! thread pair *per binding*, the reactor hosts thousands of bindings
//! on one [`ClientReactor`]: a fixed set of event loops (bindings are
//! assigned round-robin at creation) plus one dialer thread for the
//! reconnects that must block. Each binding's state — its pending-op
//! table, its connection, its failover cursor — lives on its loop
//! thread; the [`crate::TcpBinding`] handle only injects commands.
//!
//! Failover matches the blocking engine observably: a dead coordinator
//! fails every in-flight op `Unavailable`, and the next submission
//! triggers a dial of the next address. The one mechanical difference
//! is that the reactor dials *asynchronously* (the loop must keep
//! serving its other bindings), so ops submitted during the dial are
//! queued and sent on success instead of blocking the caller.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use correctables::{ConsistencyLevel, Error, Upcall};
use quorumstore::messages::Msg;
use quorumstore::types::{ReadKind, Versioned};
use quorumstore::StoreOp;

use crate::binding::{encode_submit, fail_all_pending, handle_reply, PendingOp, TcpConfig};
use crate::pump::Deadlines;
use crate::wire::Reader;

use super::conn::CloseReason;
use super::event_loop::{spawn_loop, Cmd, Ctl, Handler, Injector, DEFAULT_WRITE_CAP};

/// Events injected into a client loop.
pub(crate) enum ClientEv {
    /// A freshly created binding arrives with its already-dialed stream.
    Register {
        binding: u64,
        cfg: TcpConfig,
        stream: TcpStream,
        addr_idx: usize,
        coordinator: Arc<Mutex<SocketAddr>>,
    },
    /// One operation submitted through the binding.
    Submit {
        binding: u64,
        op: StoreOp,
        kind: ReadKind,
        upcall: Upcall<Versioned>,
        close_level: ConsistencyLevel,
    },
    /// The dialer re-established a connection for `binding`.
    DialOk {
        binding: u64,
        stream: TcpStream,
        addr_idx: usize,
    },
    /// The dialer found no replica reachable for `binding`.
    DialFailed { binding: u64 },
    /// The binding's last handle is gone (or `shutdown` was called).
    Deregister { binding: u64 },
}

/// One async reconnect job for the dialer thread.
struct DialReq {
    binding: u64,
    loop_idx: usize,
    replicas: Vec<SocketAddr>,
    start_idx: usize,
    connect_timeout: Duration,
}

/// The process-wide home of reactor client bindings: `loops` event-loop
/// threads plus one dialer thread. [`crate::TcpBinding::connect`] uses
/// a lazily created global instance sized to the machine; create your
/// own (and pass it to [`crate::TcpBinding::connect_on`]) to isolate a
/// workload — the load generator runs its many-connection mode on a
/// dedicated reactor.
pub struct ClientReactor {
    loops: Vec<Injector<ClientEv>>,
    next_binding: AtomicU64,
}

impl ClientReactor {
    /// Spawns a reactor with `loops` event loops (clamped to at least
    /// one).
    pub fn new(loops: usize) -> io::Result<ClientReactor> {
        let n = loops.max(1);
        let (dial_tx, dial_rx) = mpsc::channel::<DialReq>();
        let mut injs = Vec::with_capacity(n);
        for i in 0..n {
            let handler = ClientHandler {
                loop_idx: i,
                dial_tx: dial_tx.clone(),
                bindings: HashMap::new(),
                deadlines: Deadlines::new(),
            };
            let (inj, _join) = spawn_loop(
                &format!("icg-client-loop{i}"),
                handler,
                None,
                DEFAULT_WRITE_CAP,
            )?;
            injs.push(inj);
        }
        {
            let loops = injs.clone();
            std::thread::Builder::new()
                .name("icg-client-dialer".to_string())
                .spawn(move || dialer_loop(dial_rx, loops))?;
        }
        Ok(ClientReactor {
            loops: injs,
            next_binding: AtomicU64::new(0),
        })
    }

    /// The shared process-wide reactor, created on first use with one
    /// loop per core (capped at four — client work is parse-and-match,
    /// not compute).
    pub(crate) fn global() -> io::Result<&'static ClientReactor> {
        static GLOBAL: OnceLock<io::Result<ClientReactor>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let loops = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .clamp(1, 4);
                ClientReactor::new(loops)
            })
            .as_ref()
            .map_err(|e| io::Error::new(e.kind(), e.to_string()))
    }

    /// Dials the first reachable replica (the constructor's synchronous
    /// contract: a dead deployment surfaces here) and registers the
    /// binding with one of the loops.
    pub(crate) fn register(
        &self,
        cfg: TcpConfig,
    ) -> io::Result<(Arc<Mutex<SocketAddr>>, ReactorBinding)> {
        let mut dialed = None;
        for (idx, addr) in cfg.replicas.iter().enumerate() {
            if let Ok(stream) = TcpStream::connect_timeout(addr, cfg.connect_timeout) {
                dialed = Some((idx, *addr, stream));
                break;
            }
        }
        let Some((addr_idx, addr, stream)) = dialed else {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "no replica in the list accepted a connection",
            ));
        };
        let binding = self.next_binding.fetch_add(1, Ordering::Relaxed);
        let loop_idx = (binding as usize) % self.loops.len().max(1);
        let Some(inj) = self.loops.get(loop_idx) else {
            return Err(io::Error::other("client reactor has no loops"));
        };
        let coordinator = Arc::new(Mutex::new(addr));
        let r_strong = cfg.r_strong;
        let confirm = cfg.confirm;
        inj.send(Cmd::Ev(ClientEv::Register {
            binding,
            cfg,
            stream,
            addr_idx,
            coordinator: Arc::clone(&coordinator),
        }));
        let rb = ReactorBinding {
            binding,
            r_strong,
            confirm,
            inj: inj.clone(),
            _deregister_on_last_drop: Arc::new(DeregisterGuard {
                binding,
                inj: inj.clone(),
            }),
        };
        Ok((coordinator, rb))
    }
}

impl Drop for ClientReactor {
    /// Stops the loops. Bindings still alive afterwards fail all
    /// subsequent operations (their loop no longer drains commands).
    fn drop(&mut self) {
        for inj in &self.loops {
            inj.send(Cmd::Shutdown);
        }
    }
}

/// The binding half living inside [`crate::TcpBinding`]: an injector
/// plus the binding's id on its loop.
#[derive(Clone)]
pub(crate) struct ReactorBinding {
    binding: u64,
    pub(crate) r_strong: u8,
    pub(crate) confirm: bool,
    inj: Injector<ClientEv>,
    _deregister_on_last_drop: Arc<DeregisterGuard>,
}

impl ReactorBinding {
    pub(crate) fn id(&self) -> u64 {
        self.binding
    }

    pub(crate) fn submit(&self, ev: ClientEv) {
        self.inj.send(Cmd::Ev(ev));
    }

    pub(crate) fn shutdown(&self) {
        self.inj.send(Cmd::Ev(ClientEv::Deregister {
            binding: self.binding,
        }));
    }
}

/// Deregisters the binding when the last [`crate::TcpBinding`] clone is
/// dropped, failing its pending ops and closing its socket.
struct DeregisterGuard {
    binding: u64,
    inj: Injector<ClientEv>,
}

impl Drop for DeregisterGuard {
    fn drop(&mut self) {
        self.inj.send(Cmd::Ev(ClientEv::Deregister {
            binding: self.binding,
        }));
    }
}

/// The dialer thread: walks a binding's replica list one round per
/// request (connecting is the one blocking operation the loops must
/// not perform) and injects the outcome back into the binding's loop.
fn dialer_loop(rx: Receiver<DialReq>, loops: Vec<Injector<ClientEv>>) {
    while let Ok(req) = rx.recv() {
        let n = req.replicas.len();
        let mut dialed = None;
        for attempt in 0..n {
            let idx = (req.start_idx + attempt) % n;
            let Some(addr) = req.replicas.get(idx) else {
                continue;
            };
            if let Ok(stream) = TcpStream::connect_timeout(addr, req.connect_timeout) {
                dialed = Some((idx, stream));
                break;
            }
        }
        let Some(inj) = loops.get(req.loop_idx) else {
            continue;
        };
        match dialed {
            Some((addr_idx, stream)) => inj.send(Cmd::Ev(ClientEv::DialOk {
                binding: req.binding,
                stream,
                addr_idx,
            })),
            None => inj.send(Cmd::Ev(ClientEv::DialFailed {
                binding: req.binding,
            })),
        }
    }
}

/// Per-binding state on its loop thread.
struct BState {
    cfg: TcpConfig,
    coordinator: Arc<Mutex<SocketAddr>>,
    pending: HashMap<u64, PendingOp>,
    next_seq: u64,
    /// The loop-local connection id of the live coordinator link.
    conn: Option<u64>,
    /// Failover cursor into `cfg.replicas`.
    addr_idx: usize,
    /// An async dial is in flight; submissions queue on `unsent`.
    dialing: bool,
    /// After a failed dial round, fail submissions fast until here.
    retry_after: Option<Instant>,
    /// Ops submitted while dialing, sent in order on `DialOk`.
    unsent: Vec<(u64, Msg)>,
}

impl BState {
    fn fail_all(&mut self, err: impl Fn() -> Error) {
        fail_all_pending(&mut self.pending, err);
        self.unsent.clear();
    }
}

/// One client event loop: many bindings, one deadline heap.
struct ClientHandler {
    loop_idx: usize,
    dial_tx: Sender<DialReq>,
    /// Keyed by binding id — which is also the tag of every connection
    /// this loop owns, so frames route to their binding via the tag.
    bindings: HashMap<u64, BState>,
    /// All bindings' op deadlines, keyed `(binding, seq)`.
    deadlines: Deadlines<(u64, u64)>,
}

impl ClientHandler {
    fn submit(
        &mut self,
        ctl: &mut Ctl,
        binding: u64,
        op: StoreOp,
        kind: ReadKind,
        upcall: Upcall<Versioned>,
        close_level: ConsistencyLevel,
    ) {
        let Some(st) = self.bindings.get_mut(&binding) else {
            upcall.fail(Error::Unavailable("client connection closed".into()));
            return;
        };
        if st.conn.is_none() && !st.dialing {
            if st.retry_after.is_some_and(|at| Instant::now() < at) {
                // A dial round just found nothing reachable; fail fast
                // instead of re-dialing per queued submission.
                upcall.fail(Error::Unavailable("no replica reachable".into()));
                return;
            }
            st.dialing = true;
            let sent = self
                .dial_tx
                .send(DialReq {
                    binding,
                    loop_idx: self.loop_idx,
                    replicas: st.cfg.replicas.clone(),
                    start_idx: st.addr_idx,
                    connect_timeout: st.cfg.connect_timeout,
                })
                .is_ok();
            if !sent {
                st.dialing = false;
                upcall.fail(Error::Unavailable("no replica reachable".into()));
                return;
            }
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let (msg, written) = encode_submit(st.cfg.client_id, seq, op, kind);
        st.pending.insert(
            seq,
            PendingOp {
                upcall,
                close_level,
                prelim: None,
                written,
            },
        );
        self.deadlines
            .arm(Instant::now() + st.cfg.op_timeout, (binding, seq));
        match st.conn {
            Some(conn) => ctl.send(conn, &msg),
            // Dial in flight: deliver on DialOk, fail on DialFailed.
            None => st.unsent.push((seq, msg)),
        }
    }
}

impl Handler for ClientHandler {
    type Ev = ClientEv;

    fn on_open(&mut self, _ctl: &mut Ctl, _conn: u64, _tag: u64) {}

    fn on_accept(&mut self, _ctl: &mut Ctl, _stream: TcpStream) {
        // Client loops have no listener.
    }

    fn on_frame(&mut self, ctl: &mut Ctl, conn: u64, body: &[u8]) {
        let Some(binding) = ctl.tag_of(conn) else {
            return;
        };
        let Some(st) = self.bindings.get_mut(&binding) else {
            return;
        };
        match Reader::new(body).finish::<Msg>() {
            Ok(msg) => handle_reply(&mut st.pending, st.cfg.client_id, msg),
            // An unparseable reply means the stream is corrupt: kill the
            // connection (on_close fails the binding's pending ops) —
            // never guess at what the reply might have been.
            Err(_) => ctl.close_with(conn, CloseReason::Garbage, true),
        }
    }

    fn on_close(&mut self, _ctl: &mut Ctl, conn: u64, tag: u64, _reason: CloseReason) {
        let Some(st) = self.bindings.get_mut(&tag) else {
            return;
        };
        if st.conn != Some(conn) {
            return; // stale close of an already-replaced connection
        }
        st.conn = None;
        st.fail_all(|| Error::Unavailable("coordinator connection lost".into()));
        // Prefer a different replica on the next dial.
        let n = st.cfg.replicas.len().max(1);
        st.addr_idx = (st.addr_idx + 1) % n;
    }

    fn on_event(&mut self, ctl: &mut Ctl, ev: ClientEv) {
        match ev {
            ClientEv::Register {
                binding,
                cfg,
                stream,
                addr_idx,
                coordinator,
            } => {
                let conn = ctl.adopt(stream, binding);
                self.bindings.insert(
                    binding,
                    BState {
                        cfg,
                        coordinator,
                        pending: HashMap::new(),
                        next_seq: 0,
                        conn,
                        addr_idx,
                        dialing: false,
                        retry_after: None,
                        unsent: Vec::new(),
                    },
                );
            }
            ClientEv::Submit {
                binding,
                op,
                kind,
                upcall,
                close_level,
            } => self.submit(ctl, binding, op, kind, upcall, close_level),
            ClientEv::DialOk {
                binding,
                stream,
                addr_idx,
            } => {
                let Some(st) = self.bindings.get_mut(&binding) else {
                    return; // deregistered while the dial was in flight
                };
                st.dialing = false;
                match ctl.adopt(stream, binding) {
                    Some(conn) => {
                        st.conn = Some(conn);
                        st.addr_idx = addr_idx;
                        st.retry_after = None;
                        if let Some(addr) = st.cfg.replicas.get(addr_idx) {
                            *st.coordinator.lock() = *addr;
                        }
                        for (_, msg) in st.unsent.drain(..) {
                            ctl.send(conn, &msg);
                        }
                    }
                    None => {
                        st.fail_all(|| Error::Unavailable("coordinator connection lost".into()));
                    }
                }
            }
            ClientEv::DialFailed { binding } => {
                let Some(st) = self.bindings.get_mut(&binding) else {
                    return;
                };
                st.dialing = false;
                st.retry_after = Some(Instant::now() + st.cfg.connect_timeout);
                let n = st.cfg.replicas.len().max(1);
                st.addr_idx = (st.addr_idx + 1) % n;
                st.fail_all(|| Error::Unavailable("no replica reachable".into()));
            }
            ClientEv::Deregister { binding } => {
                let Some(mut st) = self.bindings.remove(&binding) else {
                    return;
                };
                st.fail_all(|| Error::Unavailable("client shut down".into()));
                if let Some(conn) = st.conn {
                    ctl.close(conn);
                }
            }
        }
    }

    fn on_tick(&mut self, _ctl: &mut Ctl) {
        let bindings = &mut self.bindings;
        self.deadlines
            .fire_expired(Instant::now(), |(binding, seq)| {
                if let Some(st) = bindings.get_mut(&binding) {
                    if let Some(p) = st.pending.remove(&seq) {
                        p.upcall.fail(Error::Timeout);
                    }
                }
            });
    }

    fn next_deadline(&mut self) -> Option<Instant> {
        let bindings = &self.bindings;
        self.deadlines.next_live(|&(binding, seq)| {
            bindings
                .get(&binding)
                .is_some_and(|st| st.pending.contains_key(&seq))
        })
    }
}
