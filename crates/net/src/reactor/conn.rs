//! Per-connection state machine: reusable read buffer with in-place
//! frame extraction, and a bounded write queue flushed with vectored
//! writes.
//!
//! The reactor's read path is zero-copy with respect to framing: bytes
//! land in the connection's buffer straight off the socket, complete
//! frames are *sliced* out of that buffer for decoding (the `Wire`
//! codec reads from a borrowed `&[u8]`), and only the undecoded tail of
//! a partial frame ever survives to the next readiness event — moved to
//! the front of the buffer rather than reallocated. The blocking
//! transport, by contrast, copies every frame into a per-frame scratch
//! vector via `read_exact`.
//!
//! The write path is the backpressure boundary. Frames enqueue as
//! pre-encoded byte vectors and drain with `write_vectored` (one
//! syscall for many small frames — the batched-write half of the
//! reactor's throughput win). A peer that stops reading makes the queue
//! grow; past [`Conn::write_cap`] the connection is closed rather than
//! letting one slow consumer hold the loop's memory hostage.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;

use crate::frame::MAX_FRAME;
use crate::wire::{MIN_WIRE_VERSION, WIRE_VERSION};

/// Bytes asked of the socket per `read` call. Small frames dominate
/// this protocol; 16 KiB keeps per-connection memory modest at high
/// connection counts while still draining a burst in few syscalls.
pub(crate) const READ_CHUNK: usize = 16 * 1024;

/// How many queued frames one `write_vectored` call covers.
const WRITE_BATCH: usize = 32;

/// Why a connection is being torn down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CloseReason {
    /// Clean EOF from the peer at a frame boundary.
    Eof,
    /// The socket errored (reset, mid-frame EOF surfaced on read, …).
    Io,
    /// The peer sent bytes that cannot be a frame (bad length, bad
    /// version, or a body the handler failed to decode).
    Garbage,
    /// The write queue exceeded its cap: the peer reads too slowly for
    /// the traffic addressed to it.
    Backpressure,
    /// The local handler asked for the close.
    Requested,
}

/// One step of the read-side frame extractor.
pub(crate) enum Extract {
    /// No complete frame in the buffer; wait for more bytes.
    NeedMore,
    /// A complete frame body (version byte already checked and
    /// stripped) occupies `buf[body_start..body_end]`.
    Frame {
        /// First byte of the frame body within the read buffer.
        body_start: usize,
        /// One past the last body byte; also where the next frame
        /// header begins.
        body_end: usize,
    },
    /// The stream cannot be parsed as frames from here on.
    Bad,
}

/// Examines the bytes at `buf[pos..]` for one complete frame.
pub(crate) fn extract_frame(buf: &[u8], pos: usize) -> Extract {
    let Some(header) = pos.checked_add(4).and_then(|end| buf.get(pos..end)) else {
        return Extract::NeedMore;
    };
    let Ok(len_bytes) = <[u8; 4]>::try_from(header) else {
        return Extract::NeedMore;
    };
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME {
        return Extract::Bad;
    }
    let body_start = pos + 5;
    let body_end = pos + 4 + len as usize;
    let Some(ver) = buf.get(pos + 4) else {
        return Extract::NeedMore;
    };
    if buf.len() < body_end {
        // The version byte travels first in the frame, so an
        // incompatible peer is rejected before its full frame arrives.
        if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(ver) {
            return Extract::Bad;
        }
        return Extract::NeedMore;
    }
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(ver) {
        return Extract::Bad;
    }
    Extract::Frame {
        body_start,
        body_end,
    }
}

/// One registered connection owned by exactly one event loop.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Handler-defined meaning (peer index, client tag, binding id…).
    pub(crate) tag: u64,
    /// Received-but-unparsed bytes. `read_pos` marks how much of the
    /// front has already been consumed as complete frames.
    read_buf: Vec<u8>,
    read_pos: usize,
    /// Pre-encoded frames awaiting the socket, plus how many bytes of
    /// the front frame have already been written.
    write_q: VecDeque<Vec<u8>>,
    write_head: usize,
    /// Total unwritten bytes across the queue.
    queued: usize,
    /// Cap on `queued`; exceeding it closes the connection.
    write_cap: usize,
    /// Close scheduled; drop new traffic, skip further parsing.
    pub(crate) closing: bool,
}

/// Read-side outcome of draining a readiness edge.
pub(crate) enum ReadStep {
    /// Drained to `WouldBlock`; buffer may hold complete frames.
    Progress,
    /// The peer closed or the socket failed.
    Closed(CloseReason),
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, tag: u64, write_cap: usize) -> Conn {
        Conn {
            stream,
            tag,
            read_buf: Vec::new(),
            read_pos: 0,
            write_q: VecDeque::new(),
            write_head: 0,
            queued: 0,
            write_cap,
            closing: false,
        }
    }

    /// Reads until `WouldBlock` (the edge-triggered contract: consume
    /// the whole edge or never hear about those bytes again).
    pub(crate) fn drain_read(&mut self) -> ReadStep {
        loop {
            let filled = self.read_buf.len();
            self.read_buf.resize(filled + READ_CHUNK, 0);
            let Some(spare) = self.read_buf.get_mut(filled..) else {
                self.read_buf.truncate(filled);
                return ReadStep::Closed(CloseReason::Io);
            };
            match self.stream.read(spare) {
                Ok(0) => {
                    self.read_buf.truncate(filled);
                    return ReadStep::Closed(CloseReason::Eof);
                }
                Ok(n) => {
                    self.read_buf.truncate(filled + n);
                    if n < READ_CHUNK {
                        // Short read: the socket buffer is empty now;
                        // a further read would only cost a syscall.
                        return ReadStep::Progress;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.read_buf.truncate(filled);
                    return ReadStep::Progress;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.read_buf.truncate(filled);
                }
                Err(_) => {
                    self.read_buf.truncate(filled);
                    return ReadStep::Closed(CloseReason::Io);
                }
            }
        }
    }

    /// Takes the read buffer for borrow-free frame dispatch; pair with
    /// [`Conn::restore_read_buf`].
    pub(crate) fn take_read_buf(&mut self) -> (Vec<u8>, usize) {
        (std::mem::take(&mut self.read_buf), self.read_pos)
    }

    /// Puts the (possibly further-consumed) read buffer back, moving a
    /// partial tail frame to the front so the buffer never grows
    /// without bound across many parse rounds.
    pub(crate) fn restore_read_buf(&mut self, mut buf: Vec<u8>, pos: usize) {
        if pos >= buf.len() {
            buf.clear();
            self.read_pos = 0;
        } else if pos > 0 {
            buf.copy_within(pos.., 0);
            buf.truncate(buf.len() - pos);
            self.read_pos = 0;
        } else {
            self.read_pos = 0;
        }
        // A one-off giant frame should not pin its allocation forever.
        if buf.capacity() > 4 * READ_CHUNK && buf.len() < READ_CHUNK {
            buf.shrink_to(READ_CHUNK);
        }
        self.read_buf = buf;
    }

    /// Enqueues one pre-encoded frame. Returns `false` when the write
    /// cap is exceeded — the caller must close the connection.
    pub(crate) fn enqueue(&mut self, frame: Vec<u8>) -> bool {
        if self.closing {
            return true; // dropped silently, like a dead peer
        }
        self.queued += frame.len();
        self.write_q.push_back(frame);
        self.queued <= self.write_cap
    }

    /// Whether any bytes await the socket.
    pub(crate) fn has_pending_writes(&self) -> bool {
        self.queued > 0
    }

    /// Flushes queued frames with vectored writes until the queue is
    /// empty or the socket pushes back. `Ok(true)` means fully drained.
    pub(crate) fn flush(&mut self) -> io::Result<bool> {
        while !self.write_q.is_empty() {
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(WRITE_BATCH.min(self.write_q.len()));
            for (i, frame) in self.write_q.iter().take(WRITE_BATCH).enumerate() {
                let from = if i == 0 { self.write_head } else { 0 };
                let Some(rest) = frame.get(from..) else {
                    continue;
                };
                if !rest.is_empty() {
                    slices.push(IoSlice::new(rest));
                }
            }
            if slices.is_empty() {
                self.write_q.clear();
                self.write_head = 0;
                self.queued = 0;
                break;
            }
            match self.stream.write_vectored(&slices) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.advance(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Accounts `n` written bytes across the queue front.
    fn advance(&mut self, mut n: usize) {
        self.queued = self.queued.saturating_sub(n);
        while n > 0 {
            let Some(front) = self.write_q.front() else {
                break;
            };
            let remaining = front.len().saturating_sub(self.write_head);
            if n >= remaining {
                n -= remaining;
                self.write_q.pop_front();
                self.write_head = 0;
            } else {
                self.write_head += n;
                n = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(body: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        let len = (body.len() + 1) as u32;
        f.extend_from_slice(&len.to_le_bytes());
        f.push(WIRE_VERSION);
        f.extend_from_slice(body);
        f
    }

    #[test]
    fn extract_handles_partial_and_complete_frames() {
        let f = frame_bytes(b"hello");
        // Every strict prefix wants more bytes.
        for cut in 0..f.len() {
            match extract_frame(&f[..cut], 0) {
                Extract::NeedMore => {}
                _ => panic!("prefix of {cut} bytes should be NeedMore"),
            }
        }
        match extract_frame(&f, 0) {
            Extract::Frame {
                body_start,
                body_end,
            } => assert_eq!(&f[body_start..body_end], b"hello"),
            _ => panic!("complete frame not recognized"),
        }
        // Two frames back to back: the second parses from body_end - but
        // body_end is where the *next header* begins.
        let mut two = f.clone();
        two.extend_from_slice(&frame_bytes(b"world"));
        let Extract::Frame { body_end, .. } = extract_frame(&two, 0) else {
            panic!("first frame");
        };
        match extract_frame(&two, body_end) {
            Extract::Frame {
                body_start,
                body_end,
            } => assert_eq!(&two[body_start..body_end], b"world"),
            _ => panic!("second frame not recognized"),
        }
    }

    #[test]
    fn extract_rejects_garbage() {
        // Zero length.
        assert!(matches!(extract_frame(&[0, 0, 0, 0, 1], 0), Extract::Bad));
        // Oversized announcement.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(matches!(
            extract_frame(&[huge[0], huge[1], huge[2], huge[3], 1], 0),
            Extract::Bad
        ));
        // Wrong version — rejected even before the body arrives.
        let mut f = frame_bytes(b"xx");
        f[4] = WIRE_VERSION.wrapping_add(9);
        assert!(matches!(extract_frame(&f[..5], 0), Extract::Bad));
        assert!(matches!(extract_frame(&f, 0), Extract::Bad));
    }
}
