//! The quorum-store replica served by the epoll reactor.
//!
//! Topology: `cfg.loops` event loops. Loop 0 is the *protocol loop* —
//! it owns the listener, the peer links, the shared
//! [`ReplicaCore`], and its share of the client connections. Loops
//! `1..N` are *forwarding loops*: they own the remaining client
//! connections, decode inbound frames on their own thread, and inject
//! the decoded messages into loop 0; replies travel back as
//! pre-encoded frames through the forwarding loop's injector. Accepted
//! connections round-robin across all loops, so with `loops = 1`
//! (the default) everything runs on one thread with zero cross-loop
//! hops.
//!
//! Connections are addressed by a 64-bit key: the owning loop's index
//! in the top 16 bits, the loop-local connection id in the low 48. The
//! core never knows the difference — its [`Egress`] routes by key.
//!
//! Peer links are dialed by one auxiliary thread per peer (connecting
//! is the one operation that blocks), with the same jittered
//! exponential backoff as the blocking engine; an established stream is
//! handed to loop 0 and the dialer parks until the loop reports the
//! link down.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::frame::encode_frame;
use crate::protocol::{Egress, ReplicaCore};
use crate::server::{HandleInner, ReplicaHandle, ServerConfig};
use crate::wire::{NetMsg, Reader};

use super::backoff::{Backoff, Sleeper, ThreadSleeper};
use super::conn::CloseReason;
use super::event_loop::{spawn_loop, Cmd, Ctl, Handler, Injector, DEFAULT_WRITE_CAP};

/// Loop index lives in the key's top bits, local conn id in the rest.
const LOOP_SHIFT: u32 = 48;
const CONN_MASK: u64 = (1 << LOOP_SHIFT) - 1;

/// Connection tag for client connections.
const TAG_CLIENT: u64 = 0;
/// Peer link tags: `TAG_PEER_BASE + peer_idx`.
const TAG_PEER_BASE: u64 = 1;

fn key_of(loop_idx: usize, conn: u64) -> u64 {
    ((loop_idx as u64) << LOOP_SHIFT) | (conn & CONN_MASK)
}

/// Events other threads inject into the protocol loop.
pub(crate) enum ServerEv {
    /// A dialer (re)established the stream to peer `peer`.
    PeerUp { peer: usize, stream: TcpStream },
    /// A forwarding loop decoded `msg` on connection `key`.
    Remote { key: u64, msg: NetMsg },
}

/// Starts a replica on the reactor engine.
pub(crate) fn start(
    listener: TcpListener,
    cfg: ServerConfig,
    peers: Vec<SocketAddr>,
) -> ReplicaHandle {
    let addr = listener
        .local_addr()
        // lint: allow(panic_path) — startup, nothing is serving yet
        .expect("bound socket has an addr");
    let n_loops = cfg.loops.max(1);
    let id = cfg.id;

    // Forwarding loops first (the protocol loop needs their injectors).
    // Each gets a shared slot for the protocol loop's injector, filled
    // once that loop exists; frames arriving in the gap are parked by
    // the kernel in the socket buffers, not lost.
    let mut remotes: Vec<Injector<()>> = Vec::new();
    let mut main_slots: Vec<MainSlot> = Vec::new();
    for i in 1..n_loops {
        let slot: MainSlot = Arc::new(PlMutex::new(None));
        let fh = ForwardHandler {
            idx: i,
            main: Arc::clone(&slot),
        };
        let (inj, _join) = spawn_loop(
            &format!("icg-reactor-{id}-fwd{i}"),
            fh,
            None,
            DEFAULT_WRITE_CAP,
        )
        // lint: allow(panic_path) — startup, nothing is serving yet
        .expect("spawn forwarding loop");
        remotes.push(inj);
        main_slots.push(slot);
    }

    let (down_txs, down_rxs): (Vec<Sender<()>>, Vec<Receiver<()>>) =
        (0..peers.len()).map(|_| mpsc::channel::<()>()).unzip();

    let handler = MainHandler {
        core: ReplicaCore::new(cfg.id, cfg.op_timeout, peers.len()),
        remotes: remotes.clone(),
        peer_conns: vec![None; peers.len()],
        peer_down: down_txs,
        rr: 0,
        scratch: Vec::new(),
    };
    let (main_inj, _join) = spawn_loop(
        &format!("icg-reactor-{id}-main"),
        handler,
        Some(listener),
        DEFAULT_WRITE_CAP,
    )
    // lint: allow(panic_path) — startup, nothing is serving yet
    .expect("spawn protocol loop");

    // Hand the protocol loop's injector to every forwarding handler.
    for slot in &main_slots {
        *slot.lock() = Some(main_inj.clone());
    }

    // Peer dialers: one thread per peer, parked while its link is up.
    let stop = Arc::new(AtomicBool::new(false));
    for ((peer_idx, peer_addr), down_rx) in peers.iter().copied().enumerate().zip(down_rxs) {
        let inj = main_inj.clone();
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("icg-reactor-{id}-dial-{peer_idx}"))
            .spawn(move || {
                dial_peer_loop(cfg, peer_idx, peer_addr, inj, down_rx, stop, &ThreadSleeper)
            })
            // lint: allow(panic_path) — startup, nothing is serving yet
            .expect("spawn dialer thread");
    }

    let stop_flag = Arc::clone(&stop);
    let shutdown_inj = main_inj.clone();
    let shutdown_remotes = remotes;
    ReplicaHandle {
        addr,
        inner: HandleInner::Reactor {
            stop: stop_flag,
            shutdown: Box::new(move || {
                shutdown_inj.send(Cmd::Shutdown);
                for r in &shutdown_remotes {
                    r.send(Cmd::Shutdown);
                }
            }),
        },
    }
}

/// A forwarding handler's view of the protocol loop's injector, which
/// does not exist until after the forwarding loops are spawned.
type MainSlot = Arc<PlMutex<Option<Injector<ServerEv>>>>;
use parking_lot::Mutex as PlMutex;

/// One peer dialer on the reactor engine: connect (blocking, with
/// backoff), hand the stream to the protocol loop, park until the loop
/// signals the link down, repeat.
fn dial_peer_loop(
    cfg: ServerConfig,
    peer_idx: usize,
    peer_addr: SocketAddr,
    inj: Injector<ServerEv>,
    down_rx: Receiver<()>,
    stop: Arc<AtomicBool>,
    sleeper: &impl Sleeper,
) {
    let seed = ((cfg.id as u64) << 32) ^ (peer_idx as u64) ^ 0x5EED;
    let mut backoff = Backoff::new(cfg.peer_retry, cfg.peer_retry_cap, seed);
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match TcpStream::connect_timeout(&peer_addr, Duration::from_millis(500)) {
            Ok(stream) => {
                backoff.reset();
                inj.send(Cmd::Ev(ServerEv::PeerUp {
                    peer: peer_idx,
                    stream,
                }));
                // Park until the loop reports the link down (an Err means
                // the loop itself is gone — exit).
                if down_rx.recv().is_err() {
                    return;
                }
            }
            Err(_) => sleeper.sleep(backoff.next_delay()),
        }
    }
}

/// Loop 0: the listener, the peer links, and the protocol core.
struct MainHandler {
    core: ReplicaCore,
    /// Injectors of loops `1..N`, indexed by `loop_idx - 1`.
    remotes: Vec<Injector<()>>,
    /// Loop-0 conn id of each live peer link.
    peer_conns: Vec<Option<u64>>,
    /// Signals the matching dialer to re-dial when its link dies.
    peer_down: Vec<Sender<()>>,
    /// Accept round-robin cursor across all loops.
    rr: usize,
    /// Frame-encode scratch for cross-loop sends.
    scratch: Vec<u8>,
}

/// The protocol core's window onto the reactor: loop-0 sends go through
/// `ctl`, cross-loop sends are encoded once and injected.
struct ReactorNet<'a> {
    ctl: &'a mut Ctl,
    remotes: &'a [Injector<()>],
    peer_conns: &'a [Option<u64>],
    scratch: &'a mut Vec<u8>,
}

impl Egress for ReactorNet<'_> {
    fn to_client(&mut self, key: u64, msg: &NetMsg) {
        let loop_idx = (key >> LOOP_SHIFT) as usize;
        if loop_idx == 0 {
            self.ctl.send(key, msg);
        } else if let Some(inj) = self.remotes.get(loop_idx - 1) {
            encode_frame(msg, self.scratch);
            inj.send(Cmd::Send {
                conn: key & CONN_MASK,
                frame: self.scratch.clone(),
            });
        }
    }

    fn to_peers(&mut self, msg: &NetMsg) {
        // Encode once, enqueue the same bytes on every live link.
        encode_frame(msg, self.scratch);
        for conn in self.peer_conns.iter().flatten() {
            self.ctl.send_frame(*conn, self.scratch);
        }
    }
}

impl MainHandler {
    fn net<'a>(ctl: &'a mut Ctl, this: &'a mut Self) -> (ReactorNet<'a>, &'a mut ReplicaCore) {
        (
            ReactorNet {
                ctl,
                remotes: &this.remotes,
                peer_conns: &this.peer_conns,
                scratch: &mut this.scratch,
            },
            &mut this.core,
        )
    }
}

impl Handler for MainHandler {
    type Ev = ServerEv;

    fn on_open(&mut self, _ctl: &mut Ctl, _conn: u64, _tag: u64) {}

    fn on_accept(&mut self, ctl: &mut Ctl, stream: TcpStream) {
        let n = self.remotes.len() + 1;
        let target = self.rr % n;
        self.rr = self.rr.wrapping_add(1);
        if target == 0 {
            ctl.adopt(stream, TAG_CLIENT);
        } else if let Some(inj) = self.remotes.get(target - 1) {
            inj.send(Cmd::Adopt {
                stream,
                tag: TAG_CLIENT,
            });
        }
    }

    fn on_frame(&mut self, ctl: &mut Ctl, conn: u64, body: &[u8]) {
        match Reader::new(body).finish::<NetMsg>() {
            Ok(msg) => {
                let (mut net, core) = MainHandler::net(ctl, self);
                core.on_net(&mut net, key_of(0, conn), msg);
            }
            Err(_) => ctl.close_with(conn, CloseReason::Garbage, true),
        }
    }

    fn on_close(&mut self, _ctl: &mut Ctl, conn: u64, tag: u64, _reason: CloseReason) {
        if tag >= TAG_PEER_BASE {
            let peer = (tag - TAG_PEER_BASE) as usize;
            // Only the *current* link counts: a stale close from a link
            // already replaced by the dialer must not tear down its
            // successor or double-signal the dialer.
            if self.peer_conns.get(peer).copied().flatten() == Some(conn) {
                if let Some(slot) = self.peer_conns.get_mut(peer) {
                    *slot = None;
                }
                if let Some(tx) = self.peer_down.get(peer) {
                    let _ = tx.send(());
                }
            }
        }
    }

    fn on_event(&mut self, ctl: &mut Ctl, ev: ServerEv) {
        match ev {
            ServerEv::PeerUp { peer, stream } => {
                let tag = TAG_PEER_BASE + peer as u64;
                match ctl.adopt(stream, tag) {
                    Some(conn) => {
                        // A link the dialer replaced is closed quietly.
                        if let Some(old) = self.peer_conns.get(peer).copied().flatten() {
                            ctl.close(old);
                        }
                        if let Some(slot) = self.peer_conns.get_mut(peer) {
                            *slot = Some(conn);
                        }
                        let (mut net, core) = MainHandler::net(ctl, self);
                        core.on_peer_up(&mut net);
                    }
                    None => {
                        // Registration failed: tell the dialer to retry.
                        if let Some(tx) = self.peer_down.get(peer) {
                            let _ = tx.send(());
                        }
                    }
                }
            }
            ServerEv::Remote { key, msg } => {
                let (mut net, core) = MainHandler::net(ctl, self);
                core.on_net(&mut net, key, msg);
            }
        }
    }

    fn on_tick(&mut self, ctl: &mut Ctl) {
        let (mut net, core) = MainHandler::net(ctl, self);
        core.fire_expired(&mut net);
    }

    fn next_deadline(&mut self) -> Option<Instant> {
        self.core.next_deadline()
    }
}

/// Loops 1..N: decode inbound frames off this loop's connections and
/// inject the messages into the protocol loop; outbound frames arrive
/// pre-encoded via [`Cmd::Send`].
struct ForwardHandler {
    idx: usize,
    main: MainSlot,
}

impl Handler for ForwardHandler {
    type Ev = ();

    fn on_open(&mut self, _ctl: &mut Ctl, _conn: u64, _tag: u64) {}

    fn on_accept(&mut self, _ctl: &mut Ctl, _stream: TcpStream) {
        // Forwarding loops have no listener.
    }

    fn on_frame(&mut self, ctl: &mut Ctl, conn: u64, body: &[u8]) {
        match Reader::new(body).finish::<NetMsg>() {
            Ok(msg) => {
                // Clone the injector out of the slot so the slot lock is
                // not held across the send (which takes the queue lock
                // and writes the wake fd).
                let slot = self.main.lock();
                let main = slot.clone();
                drop(slot);
                if let Some(main) = main {
                    main.send(Cmd::Ev(ServerEv::Remote {
                        key: key_of(self.idx, conn),
                        msg,
                    }));
                }
            }
            Err(_) => ctl.close_with(conn, CloseReason::Garbage, false),
        }
    }

    fn on_close(&mut self, _ctl: &mut Ctl, _conn: u64, _tag: u64, _reason: CloseReason) {
        // Replies routed to a gone connection drop silently in
        // `Ctl::send_frame`, exactly like the blocking engine's
        // missing-`Outbound` case; nothing to tell the protocol loop.
    }

    fn on_event(&mut self, _ctl: &mut Ctl, _ev: ()) {}

    fn on_tick(&mut self, _ctl: &mut Ctl) {}

    fn next_deadline(&mut self) -> Option<Instant> {
        None
    }
}
