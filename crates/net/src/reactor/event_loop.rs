//! The reactor event loop: one thread, one `epoll` instance, many
//! connections.
//!
//! A loop owns its connections exclusively — read buffers, write
//! queues, and the protocol handler all live on the loop thread, so no
//! connection state is ever locked or shared. Other threads talk to a
//! loop only through its [`Injector`]: a mutex-protected command queue
//! paired with an `eventfd` that kicks the loop out of `epoll_wait`.
//!
//! Each loop iteration:
//!
//! 1. asks the handler for its next deadline and waits for readiness
//!    (or that deadline, whichever is sooner);
//! 2. drains readable connections edge-to-exhaustion, slicing complete
//!    frames out of the connection buffers and handing each body to the
//!    handler ([`Handler::on_frame`]) for zero-copy decode;
//! 3. drains injected commands (adopt a connection, enqueue bytes,
//!    handler events, shutdown);
//! 4. flushes every connection the iteration touched with vectored
//!    writes — frames produced while handling a burst coalesce into few
//!    syscalls;
//! 5. fires the handler's deadline hook if it expired.
//!
//! Closes are deferred to the end of the iteration so the handler never
//! observes a half-removed connection.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::frame::encode_frame;
use crate::wire::Wire;

use super::conn::{extract_frame, CloseReason, Conn, Extract, ReadStep};
use super::sys::{
    EpollEvent, Poller, WakeFd, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};

/// Token values reserved for the loop's own fds; connection ids start
/// below these and count up.
const TOKEN_WAKE: u64 = u64::MAX;
const TOKEN_LISTENER: u64 = u64::MAX - 1;

/// Default cap on one connection's queued unwritten bytes.
pub(crate) const DEFAULT_WRITE_CAP: usize = 4 * 1024 * 1024;

/// What the loop does on behalf of other threads.
pub(crate) enum Cmd<Ev> {
    /// Register an established stream with this loop; the handler hears
    /// [`Handler::on_open`] with the given tag.
    Adopt { stream: TcpStream, tag: u64 },
    /// Enqueue pre-encoded frame bytes on a connection this loop owns.
    Send { conn: u64, frame: Vec<u8> },
    /// A handler-defined event.
    Ev(Ev),
    /// Exit the loop, closing every connection.
    Shutdown,
}

/// The protocol living on an event loop. All hooks run on the loop
/// thread with exclusive access to the loop's connections via [`Ctl`].
pub(crate) trait Handler: Send + 'static {
    /// Cross-thread event type delivered through the [`Injector`].
    type Ev: Send + 'static;

    /// A connection was adopted (locally via [`Ctl::adopt`] or through
    /// [`Cmd::Adopt`]).
    fn on_open(&mut self, ctl: &mut Ctl, conn: u64, tag: u64);

    /// The loop's listener accepted `stream`. Only called on loops
    /// spawned with a listener.
    fn on_accept(&mut self, ctl: &mut Ctl, stream: TcpStream);

    /// One complete frame body (version checked and stripped) arrived.
    fn on_frame(&mut self, ctl: &mut Ctl, conn: u64, body: &[u8]);

    /// A connection this loop owned is gone. Not called for closes the
    /// handler itself requested.
    fn on_close(&mut self, ctl: &mut Ctl, conn: u64, tag: u64, reason: CloseReason);

    /// An injected [`Cmd::Ev`] arrived.
    fn on_event(&mut self, ctl: &mut Ctl, ev: Self::Ev);

    /// The deadline previously returned by [`Handler::next_deadline`]
    /// expired.
    fn on_tick(&mut self, ctl: &mut Ctl);

    /// The soonest instant at which [`Handler::on_tick`] must run.
    fn next_deadline(&mut self) -> Option<Instant>;
}

/// Cross-thread handle into one loop. Cloneable and cheap; sends are
/// lock-push-wake.
pub(crate) struct Injector<Ev> {
    queue: Arc<Mutex<VecDeque<Cmd<Ev>>>>,
    wake: Arc<WakeFd>,
}

impl<Ev> Clone for Injector<Ev> {
    fn clone(&self) -> Self {
        Injector {
            queue: Arc::clone(&self.queue),
            wake: Arc::clone(&self.wake),
        }
    }
}

impl<Ev> Injector<Ev> {
    /// Enqueues `cmd` and wakes the loop.
    pub(crate) fn send(&self, cmd: Cmd<Ev>) {
        self.queue.lock().push_back(cmd);
        self.wake.wake();
    }
}

/// The loop's connection table and write machinery, handed to handler
/// hooks. Split from the handler itself so hooks can mutate both.
pub(crate) struct Ctl {
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    /// Connections with bytes enqueued this iteration, flushed together.
    dirty: Vec<u64>,
    /// Closes scheduled this iteration: (conn, reason, notify-handler).
    closing: Vec<(u64, CloseReason, bool)>,
    /// Frame-encode scratch reused across sends.
    scratch: Vec<u8>,
    write_cap: usize,
    shutdown: bool,
}

impl Ctl {
    /// Registers an established stream with this loop and reports it
    /// via the returned id (the handler's `on_open` also fires, after
    /// the current hook returns). `None` if registration failed.
    pub(crate) fn adopt(&mut self, stream: TcpStream, tag: u64) -> Option<u64> {
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            return None;
        }
        let id = self.next_conn;
        let interest = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
        if self.poller.add(stream.as_raw_fd(), id, interest).is_err() {
            return None;
        }
        self.next_conn += 1;
        self.conns
            .insert(id, Conn::new(stream, tag, self.write_cap));
        Some(id)
    }

    /// Encodes `msg` as a frame and enqueues it on `conn`. Unknown or
    /// closing connections drop the message — the semantics of an
    /// unreachable peer, exactly like the blocking transport.
    pub(crate) fn send<T: Wire>(&mut self, conn: u64, msg: &T) {
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_frame(msg, &mut scratch);
        self.send_frame(conn, &scratch);
        self.scratch = scratch;
    }

    /// Enqueues pre-encoded frame bytes on `conn`.
    pub(crate) fn send_frame(&mut self, conn: u64, frame: &[u8]) {
        let Some(c) = self.conns.get_mut(&conn) else {
            return;
        };
        if c.closing {
            return;
        }
        if !c.enqueue(frame.to_vec()) {
            self.close_with(conn, CloseReason::Backpressure, true);
            return;
        }
        if !self.dirty.contains(&conn) {
            self.dirty.push(conn);
        }
    }

    /// Schedules `conn` for teardown at the end of this iteration,
    /// without an `on_close` callback (the handler asked for it).
    pub(crate) fn close(&mut self, conn: u64) {
        self.close_with(conn, CloseReason::Requested, false);
    }

    /// The tag `conn` was adopted with, if it is still open.
    pub(crate) fn tag_of(&self, conn: u64) -> Option<u64> {
        self.conns.get(&conn).filter(|c| !c.closing).map(|c| c.tag)
    }

    /// Schedules `conn` for teardown with an explicit reason;
    /// `notify` controls whether [`Handler::on_close`] fires for it.
    pub(crate) fn close_with(&mut self, conn: u64, reason: CloseReason, notify: bool) {
        let Some(c) = self.conns.get_mut(&conn) else {
            return;
        };
        if c.closing {
            return;
        }
        c.closing = true;
        self.closing.push((conn, reason, notify));
    }
}

/// Spawns one reactor loop named `name` running `handler`, optionally
/// owning `listener`. Returns the loop's injector and join handle.
pub(crate) fn spawn_loop<H: Handler>(
    name: &str,
    handler: H,
    listener: Option<TcpListener>,
    write_cap: usize,
) -> io::Result<(Injector<H::Ev>, std::thread::JoinHandle<()>)> {
    let poller = Poller::new()?;
    let wake = Arc::new(WakeFd::new()?);
    poller.add(wake.raw(), TOKEN_WAKE, EPOLLIN)?;
    if let Some(l) = &listener {
        l.set_nonblocking(true)?;
        poller.add(l.as_raw_fd(), TOKEN_LISTENER, EPOLLIN | EPOLLET)?;
    }
    let queue: Arc<Mutex<VecDeque<Cmd<H::Ev>>>> = Arc::new(Mutex::new(VecDeque::new()));
    let injector = Injector {
        queue: Arc::clone(&queue),
        wake: Arc::clone(&wake),
    };
    let ctl = Ctl {
        poller,
        conns: HashMap::new(),
        next_conn: 0,
        dirty: Vec::new(),
        closing: Vec::new(),
        scratch: Vec::new(),
        write_cap,
        shutdown: false,
    };
    let mut lp = Loop {
        ctl,
        handler,
        listener,
        wake,
        queue,
        events: Vec::new(),
    };
    let join = std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || lp.run())?;
    Ok((injector, join))
}

struct Loop<H: Handler> {
    ctl: Ctl,
    handler: H,
    listener: Option<TcpListener>,
    wake: Arc<WakeFd>,
    queue: Arc<Mutex<VecDeque<Cmd<H::Ev>>>>,
    events: Vec<EpollEvent>,
}

impl<H: Handler> Loop<H> {
    fn run(&mut self) {
        while !self.ctl.shutdown {
            let timeout = self.handler.next_deadline().map(|at| {
                at.checked_duration_since(Instant::now())
                    .unwrap_or(Duration::ZERO)
            });
            let mut events = std::mem::take(&mut self.events);
            if self.ctl.poller.wait(&mut events, timeout).is_err() {
                // EBADF and friends mean the poller itself is broken;
                // there is nothing useful left to serve.
                break;
            }
            for i in 0..events.len() {
                let Some(ev) = events.get(i) else {
                    break;
                };
                let (token, bits) = (ev.data, ev.events);
                match token {
                    TOKEN_WAKE => {
                        self.wake.drain();
                        self.drain_cmds();
                    }
                    TOKEN_LISTENER => self.accept_burst(),
                    conn => self.conn_ready(conn, bits),
                }
                if self.ctl.shutdown {
                    break;
                }
            }
            self.events = events;
            self.settle();
            if let Some(at) = self.handler.next_deadline() {
                if Instant::now() >= at {
                    self.handler.on_tick(&mut self.ctl);
                    self.settle();
                }
            }
        }
        // Shutdown: drop every connection outright (in-flight frames are
        // lost — to the peers this is a crash, which is what the
        // failover machinery is tested against).
        for (_, c) in self.ctl.conns.drain() {
            self.ctl.poller.del(c.stream.as_raw_fd());
        }
    }

    fn drain_cmds(&mut self) {
        loop {
            let Some(cmd) = self.queue.lock().pop_front() else {
                break;
            };
            match cmd {
                Cmd::Adopt { stream, tag } => {
                    if let Some(id) = self.ctl.adopt(stream, tag) {
                        self.handler.on_open(&mut self.ctl, id, tag);
                        // A freshly adopted connection may already have
                        // readable bytes; ET only reports future edges.
                        self.conn_ready(id, EPOLLIN);
                    }
                }
                Cmd::Send { conn, frame } => self.ctl.send_frame(conn, &frame),
                Cmd::Ev(ev) => self.handler.on_event(&mut self.ctl, ev),
                Cmd::Shutdown => {
                    self.ctl.shutdown = true;
                    return;
                }
            }
            self.reap_closed();
        }
    }

    fn accept_burst(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => self.handler.on_accept(&mut self.ctl, stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient per-connection accept errors (ECONNABORTED
                // etc.): skip the connection, keep the listener.
                Err(_) => {}
            }
            if self.ctl.shutdown {
                return;
            }
        }
    }

    fn conn_ready(&mut self, conn: u64, bits: u32) {
        let hup = bits & (EPOLLERR | EPOLLHUP) != 0;
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 || hup {
            let step = match self.ctl.conns.get_mut(&conn) {
                Some(c) if !c.closing => c.drain_read(),
                _ => return,
            };
            self.dispatch_frames(conn);
            match step {
                ReadStep::Progress if !hup => {}
                ReadStep::Progress => self.ctl.close_with(conn, CloseReason::Io, true),
                ReadStep::Closed(reason) => self.ctl.close_with(conn, reason, true),
            }
        }
        if bits & EPOLLOUT != 0 {
            self.flush_one(conn);
        }
    }

    /// Slices every complete frame out of `conn`'s buffer, dispatching
    /// each body to the handler. The buffer is taken out of the
    /// connection for the duration so the handler may freely use the
    /// connection table (send, close, adopt) mid-dispatch.
    fn dispatch_frames(&mut self, conn: u64) {
        let Some(c) = self.ctl.conns.get_mut(&conn) else {
            return;
        };
        let (buf, mut pos) = c.take_read_buf();
        loop {
            match extract_frame(&buf, pos) {
                Extract::NeedMore => break,
                Extract::Bad => {
                    self.ctl.close_with(conn, CloseReason::Garbage, true);
                    break;
                }
                Extract::Frame {
                    body_start,
                    body_end,
                } => {
                    if let Some(body) = buf.get(body_start..body_end) {
                        self.handler.on_frame(&mut self.ctl, conn, body);
                    }
                    pos = body_end;
                }
            }
            let still_open = self.ctl.conns.get(&conn).is_some_and(|c| !c.closing);
            if !still_open {
                break;
            }
        }
        if let Some(c) = self.ctl.conns.get_mut(&conn) {
            c.restore_read_buf(buf, pos);
        }
    }

    fn flush_one(&mut self, conn: u64) {
        let Some(c) = self.ctl.conns.get_mut(&conn) else {
            return;
        };
        if c.closing || !c.has_pending_writes() {
            return;
        }
        if c.flush().is_err() {
            self.ctl.close_with(conn, CloseReason::Io, true);
        }
    }

    fn flush_dirty(&mut self) {
        let mut dirty = std::mem::take(&mut self.ctl.dirty);
        for conn in dirty.drain(..) {
            self.flush_one(conn);
        }
        self.ctl.dirty = dirty;
    }

    /// Tears down every connection scheduled for close, notifying the
    /// handler for remote-initiated ones.
    fn reap_closed(&mut self) {
        while let Some((conn, reason, notify)) = self.ctl.closing.pop() {
            let Some(c) = self.ctl.conns.remove(&conn) else {
                continue;
            };
            self.ctl.poller.del(c.stream.as_raw_fd());
            let tag = c.tag;
            drop(c);
            if notify {
                self.handler.on_close(&mut self.ctl, conn, tag, reason);
            }
        }
    }

    /// Runs close/flush rounds until quiescent, so frames produced by
    /// `on_close` hooks still go out within this iteration.
    fn settle(&mut self) {
        loop {
            if !self.ctl.closing.is_empty() {
                self.reap_closed();
                continue;
            }
            if !self.ctl.dirty.is_empty() {
                self.flush_dirty();
                continue;
            }
            break;
        }
    }
}
