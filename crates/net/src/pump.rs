//! Shared event-loop plumbing: a deadline heap plus the
//! wait-for-event-or-next-deadline receive step.
//!
//! Both protocol loops in this crate (the replica server's and the
//! client binding's) are the same shape — an mpsc event channel, a heap
//! of operation deadlines, and a "handle whichever comes first" pump.
//! This module owns that shape once so the lazy-discard and expiry
//! logic cannot drift between the two.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::Instant;

/// A min-heap of `(deadline, key)` pairs with lazy discarding of keys
/// whose operation already finished.
pub(crate) struct Deadlines<K: Ord + Copy> {
    heap: BinaryHeap<Reverse<(Instant, K)>>,
}

impl<K: Ord + Copy> Deadlines<K> {
    pub(crate) fn new() -> Self {
        Deadlines {
            heap: BinaryHeap::new(),
        }
    }

    /// Arms a deadline for `key`.
    pub(crate) fn arm(&mut self, at: Instant, key: K) {
        self.heap.push(Reverse((at, key)));
    }

    /// Drops every armed deadline (used when all pending ops are failed
    /// wholesale).
    pub(crate) fn clear(&mut self) {
        self.heap.clear();
    }

    /// The soonest deadline whose key is still `alive`, discarding dead
    /// entries encountered on the way (ops that completed before their
    /// deadline fired).
    pub(crate) fn next_live(&mut self, alive: impl Fn(&K) -> bool) -> Option<Instant> {
        while let Some(Reverse((at, key))) = self.heap.peek().copied() {
            if alive(&key) {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }

    /// Pops every deadline at or before `now`, feeding each key to
    /// `expire` (dead keys included — the callback's remove handles
    /// both).
    pub(crate) fn fire_expired(&mut self, now: Instant, mut expire: impl FnMut(K)) {
        while let Some(Reverse((at, key))) = self.heap.peek().copied() {
            if at > now {
                break;
            }
            self.heap.pop();
            expire(key);
        }
    }
}

/// Outcome of one pump step.
pub(crate) enum Step<E> {
    /// An event arrived.
    Event(E),
    /// The given deadline passed with no event.
    Expired,
    /// Every sender hung up; the loop should exit.
    Closed,
}

/// Waits for the next event or until `deadline`, whichever comes first.
pub(crate) fn recv_step<E>(rx: &Receiver<E>, deadline: Option<Instant>) -> Step<E> {
    match deadline {
        Some(at) => {
            let now = Instant::now();
            if at <= now {
                return Step::Expired;
            }
            match rx.recv_timeout(at - now) {
                Ok(e) => Step::Event(e),
                Err(RecvTimeoutError::Timeout) => Step::Expired,
                Err(RecvTimeoutError::Disconnected) => Step::Closed,
            }
        }
        None => match rx.recv() {
            Ok(e) => Step::Event(e),
            Err(_) => Step::Closed,
        },
    }
}
