//! Blocking-TCP building blocks: per-connection outbound writer threads
//! and frame-decoding reader threads.
//!
//! The threading model (documented with diagrams in `DESIGN.md` §10):
//!
//! - each connection gets **one writer thread** owning the write half.
//!   Senders enqueue pre-encoded frames on an unbounded channel and never
//!   block on the socket; a dead peer fails the channel and sends turn
//!   into cheap no-ops.
//! - each connection gets **one reader thread** owning the read half,
//!   decoding frames and handing messages to a caller-supplied sink.
//! - listeners get **one reactor (accept) thread** spawning the above
//!   pair per accepted connection (see [`crate::server`]).
//!
//! All state machines (replica, client binding) run on their own single
//! event-loop thread and communicate with these I/O threads exclusively
//! through channels, so no protocol state is ever touched from two
//! threads.

use std::io::BufReader;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::frame::{encode_frame, read_frame, FrameError};
use crate::wire::Wire;

/// Which I/O engine serves a replica's or binding's sockets.
///
/// Both engines speak the identical wire protocol and share the same
/// protocol core (`crate::protocol`) — the choice only affects the
/// threading model. The blocking engine remains selectable for one
/// release while the reactor soaks in production; it will be removed
/// once the reactor has a release of mileage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Transport {
    /// The epoll reactor (icg-net v2): a fixed set of event-loop
    /// threads multiplexing all connections. Scales to tens of
    /// thousands of connections per process.
    #[default]
    Reactor,
    /// The original thread-per-connection engine: one reader and one
    /// writer thread per socket. Simple, but two OS threads per
    /// connection is a wall at production connection counts.
    Blocking,
}

/// A handle sending messages to one connection through its dedicated
/// writer thread. Cloning shares the same connection (the stream handle
/// is behind an `Arc`, so clones cannot fail).
#[derive(Clone)]
pub struct Outbound {
    tx: Sender<Vec<u8>>,
    dead: Arc<AtomicBool>,
    stream: Arc<TcpStream>,
}

impl Outbound {
    /// Takes ownership of the stream's write half and spawns the writer
    /// thread. The returned handle encodes and enqueues; the thread
    /// drains the queue with one `write_all` per frame.
    ///
    /// Sets `TCP_NODELAY`: the protocol is small request/response frames
    /// in a closed loop, exactly the pattern where Nagle's algorithm
    /// colliding with delayed ACKs costs 40 ms per quorum round-trip.
    pub fn spawn(stream: TcpStream, label: &str) -> std::io::Result<Outbound> {
        stream.set_nodelay(true)?;
        let (tx, rx) = mpsc::channel::<Vec<u8>>();
        let dead = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&dead);
        let mut write_half = stream.try_clone()?;
        std::thread::Builder::new()
            .name(format!("icg-net-writer-{label}"))
            .spawn(move || {
                use std::io::Write;
                while let Ok(frame) = rx.recv() {
                    if write_half.write_all(&frame).is_err() {
                        flag.store(true, Ordering::Release);
                        // Keep draining so senders never block or error;
                        // the connection owner notices `is_dead` (or the
                        // reader thread's close event) and tears down.
                        continue;
                    }
                }
                let _ = write_half.shutdown(Shutdown::Write);
            })?;
        Ok(Outbound {
            tx,
            dead,
            stream: Arc::new(stream),
        })
    }

    /// Encodes `msg` and enqueues it. Returns `false` if the connection
    /// is already known to be dead (the frame is dropped — exactly the
    /// semantics of an unreachable peer).
    pub fn send<T: Wire>(&self, msg: &T) -> bool {
        if self.is_dead() {
            return false;
        }
        let mut frame = Vec::with_capacity(64);
        encode_frame(msg, &mut frame);
        self.tx.send(frame).is_ok()
    }

    /// Whether a write error has been observed on this connection.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Forcibly closes both halves of the connection. In-flight frames
    /// are lost — this models a crash, and the failover tests use it as
    /// one.
    pub fn kill(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// Spawns the reader thread for one connection: decodes frames off the
/// stream and feeds each message to `sink`. When the stream ends —
/// cleanly, by error, or by an undecodable frame — `on_close` runs
/// exactly once with the reason (`None` for a clean EOF). Fails only if
/// the OS refuses the thread; the caller treats that like a dead
/// connection.
pub fn spawn_reader<T, F, G>(
    stream: TcpStream,
    label: &str,
    mut sink: F,
    on_close: G,
) -> std::io::Result<JoinHandle<()>>
where
    T: Wire + Send + 'static,
    F: FnMut(T) + Send + 'static,
    G: FnOnce(Option<FrameError>) + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("icg-net-reader-{label}"))
        .spawn(move || {
            let mut reader = BufReader::new(stream);
            let mut scratch = Vec::new();
            let reason = loop {
                match read_frame::<T>(&mut reader, &mut scratch) {
                    Ok(Some(msg)) => sink(msg),
                    Ok(None) => break None,
                    Err(e) => break Some(e),
                }
            };
            on_close(reason);
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumstore::types::OpId;
    use quorumstore::Msg;
    use simnet::NodeId;
    use std::net::TcpListener;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn round_trip_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_stream, _) = listener.accept().unwrap();

        let (got_tx, got_rx) = channel();
        let (closed_tx, closed_rx) = channel();
        spawn_reader::<Msg, _, _>(
            server_stream,
            "test",
            move |m| {
                got_tx.send(m).unwrap();
            },
            move |reason| {
                closed_tx.send(reason.is_none()).unwrap();
            },
        )
        .unwrap();

        let out = Outbound::spawn(client, "test").unwrap();
        for seq in 0..100 {
            assert!(out.send(&Msg::WriteReply {
                op: OpId {
                    client: NodeId(1),
                    seq,
                },
            }));
        }
        for seq in 0..100 {
            let m = got_rx.recv_timeout(Duration::from_secs(5)).unwrap();
            match m {
                Msg::WriteReply { op } => assert_eq!(op.seq, seq),
                other => panic!("unexpected {other:?}"),
            }
        }
        drop(out); // hangs up: writer thread exits, shuts down the socket
        assert!(closed_rx.recv_timeout(Duration::from_secs(5)).unwrap());
    }

    #[test]
    fn kill_surfaces_as_unclean_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_stream, _) = listener.accept().unwrap();
        let (closed_tx, closed_rx) = channel();
        spawn_reader::<Msg, _, _>(
            client,
            "test",
            |_: Msg| {},
            move |reason| {
                closed_tx.send(reason).unwrap();
            },
        )
        .unwrap();
        let out = Outbound::spawn(server_stream, "test").unwrap();
        out.kill();
        assert!(out.is_dead());
        // A reset mid-stream may read as an error or as EOF depending on
        // timing; either way the close fires and sends become no-ops.
        let _ = closed_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    }
}
