//! Connection-scaling soak: 10,000 concurrent client connections
//! against a 3-replica reactor cluster, sustained under open-loop load.
//!
//! This is the workload the epoll transport exists for — the blocking
//! engine would need 20k threads per replica to survive it. The test
//! runs the real binaries as subprocesses (`icg-replicad` holds 10k
//! server-side sockets, `icg-loadgen` holds the 10k client-side ones;
//! splitting them across processes keeps each under the fd rlimit).
//!
//! Ignored by default: it takes ~a minute and wants a quiet machine.
//! CI's oracle-soak job runs it with `--ignored`; locally:
//!
//! ```text
//! cargo test -p icg_apps --release --test conn_soak -- --ignored
//! ```

use std::net::TcpListener;
use std::process::{Child, Command, Stdio};

/// Kills the replica processes even when the test panics.
struct Cluster(Vec<Child>);

impl Drop for Cluster {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Three free loopback ports. Bind-then-drop has a race window, but the
/// replicad boot retried by loadgen's dial loop papers over collisions.
fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("probe bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("probe addr").port())
        .collect()
}

fn spawn_cluster(ports: &[u16]) -> Cluster {
    let addrs: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let children = (0..ports.len())
        .map(|i| {
            let peers: Vec<String> = addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| a.clone())
                .collect();
            Command::new(env!("CARGO_BIN_EXE_icg-replicad"))
                .args([
                    "--id",
                    &i.to_string(),
                    "--listen",
                    &addrs[i],
                    "--peers",
                    &peers.join(","),
                ])
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn icg-replicad")
        })
        .collect();
    Cluster(children)
}

#[test]
#[ignore = "10k-connection soak; run with --ignored (CI: oracle-soak job)"]
fn ten_thousand_connections_sustained() {
    let ports = free_ports(3);
    let _cluster = spawn_cluster(&ports);
    let replicas = ports
        .iter()
        .map(|p| format!("127.0.0.1:{p}"))
        .collect::<Vec<_>>()
        .join(",");

    let out = Command::new(env!("CARGO_BIN_EXE_icg-loadgen"))
        .args([
            "--replicas",
            &replicas,
            "--open-loop",
            "--connections",
            "10000",
            "--rate",
            "4000",
            "--duration-secs",
            "20",
            "--keys",
            "1000",
            "--timeout-ms",
            "5000",
        ])
        .output()
        .expect("run icg-loadgen");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "soak loadgen failed (status {:?})\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );
    assert!(
        stderr.contains("open-loop: 10000 connections established"),
        "did not reach 10k concurrent connections\nstderr:\n{stderr}"
    );
    // "failed: 0" on the throughput line — every issued op completed.
    assert!(
        stdout.contains("failed: 0"),
        "soak had failed operations\nstdout:\n{stdout}"
    );
}
