//! A tiny hand-rolled flag parser for the deployment binaries.
//!
//! The workspace is fully offline (no clap); `icg-replicad` and
//! `icg-loadgen` need exactly `--key value`, `--key=value`, and bare
//! boolean `--flag` forms, which this covers in a few dozen lines.
//! Unknown flags are an error so a typo'd option fails loudly instead
//! of silently running with a default.

use std::collections::HashMap;

/// Parsed command-line flags.
pub struct Flags {
    values: HashMap<String, String>,
    bools: Vec<String>,
    /// Flag names the binary accepts, for the unknown-flag check.
    known: Vec<&'static str>,
}

impl Flags {
    /// Parses `args` (without the program name). `known` lists every
    /// accepted flag name, bare (no `--`).
    ///
    /// Returns an error string naming the offending token on unknown
    /// flags, missing values, or non-flag positional arguments.
    pub fn parse(
        args: impl Iterator<Item = String>,
        known: &[&'static str],
    ) -> Result<Flags, String> {
        let mut flags = Flags {
            values: HashMap::new(),
            bools: Vec::new(),
            known: known.to_vec(),
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{arg}'"));
            };
            let (name, inline) = match name.split_once('=') {
                Some((n, v)) => (n.to_string(), Some(v.to_string())),
                None => (name.to_string(), None),
            };
            if !known.contains(&name.as_str()) {
                return Err(format!("unknown flag '--{name}'"));
            }
            match inline {
                Some(v) => {
                    flags.values.insert(name, v);
                }
                None => {
                    // A following token that is not itself a flag is this
                    // flag's value; otherwise it is a boolean switch.
                    if args.peek().is_some_and(|next| !next.starts_with("--")) {
                        flags.values.insert(name, args.next().expect("peeked"));
                    } else {
                        flags.bools.push(name);
                    }
                }
            }
        }
        Ok(flags)
    }

    /// The value of `--name`, if one was given.
    pub fn get(&self, name: &str) -> Option<&str> {
        debug_assert!(self.known.contains(&name), "undeclared flag '{name}'");
        self.values.get(name).map(String::as_str)
    }

    /// The value of `--name`, or `default`.
    pub fn get_or(&self, name: &str, default: &str) -> String {
        self.get(name).unwrap_or(default).to_string()
    }

    /// `--name` parsed as `u64`, or `default`. Exits with a message on a
    /// malformed value.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        match self.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("--{name} expects an integer, got '{v}'"))),
        }
    }

    /// `--name` parsed as `f64`, or `default`.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        match self.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("--{name} expects a number, got '{v}'"))),
        }
    }

    /// Whether bare `--name` was passed (or `--name=true`).
    pub fn has(&self, name: &str) -> bool {
        debug_assert!(self.known.contains(&name), "undeclared flag '{name}'");
        self.bools.iter().any(|b| b == name) || self.get(name) == Some("true")
    }
}

/// Prints `msg` to stderr and exits nonzero. Used by the binaries for
/// flag errors; never returns.
pub fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Flags, String> {
        Flags::parse(
            tokens.iter().map(|s| s.to_string()),
            &["id", "listen", "peers", "confirm", "ops"],
        )
    }

    #[test]
    fn value_and_bool_forms() {
        let f = parse(&["--id", "2", "--listen=127.0.0.1:4701", "--confirm"]).unwrap();
        assert_eq!(f.get("id"), Some("2"));
        assert_eq!(f.get_u64("id", 0), 2);
        assert_eq!(f.get("listen"), Some("127.0.0.1:4701"));
        assert!(f.has("confirm"));
        assert!(!f.has("peers"));
        assert_eq!(f.get_or("peers", ""), "");
    }

    #[test]
    fn bool_flag_before_another_flag() {
        let f = parse(&["--confirm", "--ops", "10"]).unwrap();
        assert!(f.has("confirm"));
        assert_eq!(f.get_u64("ops", 0), 10);
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse(&["--bogus", "1"]).is_err());
        assert!(parse(&["positional"]).is_err());
    }
}
