//! The ticket-selling system (§4.3, Listing 5; evaluated in §6.3.2).
//!
//! Tickets are a replicated queue: organizers enqueue, retailers dequeue.
//! Tickets carry no seating, so *which* element is dequeued is irrelevant —
//! the preliminary view (a local simulation of the dequeue) is safe to act
//! on while the stock is comfortably above a threshold; only the last few
//! tickets pay for atomic (final) semantics, avoiding overselling.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use consensusq::{QueueBinding, QueueOp, SimQueue};
use correctables::{Client, Correctable};

/// The outcome of one purchase attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Purchase {
    /// A ticket was secured.
    Confirmed {
        /// Whether the preliminary view confirmed it (fast path).
        via_prelim: bool,
        /// The ticket's queue element, when known.
        ticket: Option<String>,
    },
    /// No tickets left.
    SoldOut,
}

/// The retailer-side application.
pub struct TicketOffice {
    queue: SimQueue,
    client: Arc<Client<QueueBinding>>,
    /// Stock level below which purchases wait for the final view.
    pub threshold: u64,
}

impl TicketOffice {
    /// Opens an office over a queue, with the paper's threshold of 20.
    pub fn new(queue: SimQueue) -> Self {
        let client = Arc::new(Client::new(queue.binding()));
        TicketOffice {
            queue,
            client,
            threshold: 20,
        }
    }

    /// The underlying queue (for `settle` and timings).
    pub fn queue(&self) -> &SimQueue {
        &self.queue
    }

    /// Listing 5's `purchaseTicket`, verbatim in Correctables form:
    /// confirm on the preliminary when the stock is high, otherwise wait
    /// for the final (atomic) dequeue.
    pub fn purchase_ticket(&self) -> Correctable<Purchase> {
        let (out, handle) = Correctable::<Purchase>::pending();
        let done = Arc::new(AtomicBool::new(false));
        let threshold = self.threshold;
        let c = self.client.invoke(QueueOp::Dequeue);
        let h_u = handle.clone();
        let done_u = Arc::clone(&done);
        c.on_update(move |weak| {
            // `onUpdate`: many tickets left — buy on the preliminary.
            if weak.value.name.is_some() && weak.value.remaining > threshold {
                done_u.store(true, Ordering::Relaxed);
                let _ = h_u.close(
                    Purchase::Confirmed {
                        via_prelim: true,
                        ticket: weak.value.name.clone(),
                    },
                    weak.level,
                );
            }
        });
        let h_f = handle.clone();
        let done_f = done;
        c.on_final(move |strong| {
            // `onFinal`: if not already confirmed, the atomic result
            // decides — a ticket, or "Sold out. Sorry!".
            if !done_f.load(Ordering::Relaxed) {
                let outcome = match &strong.value.name {
                    Some(name) => Purchase::Confirmed {
                        via_prelim: false,
                        ticket: Some(name.clone()),
                    },
                    None => Purchase::SoldOut,
                };
                let _ = h_f.close(outcome, strong.level);
            }
        });
        let h_e = handle;
        c.on_error(move |e| {
            let _ = h_e.fail(e.clone());
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensusq::ServerConfig;

    fn office(stock: u64) -> TicketOffice {
        let q = SimQueue::ec2(ServerConfig::default(), "IRL", "FRK", "FRK", 13);
        q.prefill(stock, 20);
        TicketOffice::new(q)
    }

    #[test]
    fn high_stock_confirms_on_preliminary() {
        let office = office(100);
        let p = office.purchase_ticket();
        office.queue().settle();
        match p.final_view().unwrap().value {
            Purchase::Confirmed { via_prelim, ticket } => {
                assert!(via_prelim, "stock of 100 must use the fast path");
                assert!(ticket.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        // The fast path closes at the weak level.
        assert_eq!(
            p.final_view().unwrap().level,
            correctables::ConsistencyLevel::WEAK
        );
    }

    #[test]
    fn low_stock_waits_for_final_atomic_view() {
        let office = office(5);
        let p = office.purchase_ticket();
        office.queue().settle();
        match p.final_view().unwrap().value {
            Purchase::Confirmed { via_prelim, ticket } => {
                assert!(!via_prelim, "stock of 5 must wait for the final");
                assert!(ticket.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            p.final_view().unwrap().level,
            correctables::ConsistencyLevel::STRONG
        );
    }

    #[test]
    fn empty_queue_sells_out() {
        let office = office(0);
        let p = office.purchase_ticket();
        office.queue().settle();
        assert_eq!(p.final_view().unwrap().value, Purchase::SoldOut);
    }

    #[test]
    fn draining_the_stock_never_oversells() {
        let office = office(30);
        let mut confirmed = 0;
        let mut sold_out = false;
        for _ in 0..35 {
            let p = office.purchase_ticket();
            office.queue().settle();
            match p.final_view().unwrap().value {
                Purchase::Confirmed { .. } => confirmed += 1,
                Purchase::SoldOut => {
                    sold_out = true;
                    break;
                }
            }
        }
        assert_eq!(confirmed, 30, "exactly the stock is sold");
        assert!(sold_out);
    }
}
