//! The ticket-selling system (§4.3, Listing 5; evaluated in §6.3.2).
//!
//! Tickets are a replicated queue: organizers enqueue, retailers dequeue.
//! Tickets carry no seating, so *which* element is dequeued is irrelevant —
//! the preliminary view (a local simulation of the dequeue) is safe to act
//! on while the stock is comfortably above a threshold; only the last few
//! tickets pay for atomic (final) semantics, avoiding overselling.
//!
//! [`EscrowOffice`] is the segmented-invariant-confluence variant: the
//! stock is split into per-replica escrow segments, each replica sells
//! from its own segment coordination-free (the weak view *is* the
//! confirmation), and only segment exhaustion pays a strong transfer
//! round. Where [`TicketOffice`] thresholds on a global stock estimate,
//! the escrow split makes the fast path *provably* safe: a segment's
//! owner is the only writer of its `sold` row, so a local sale can
//! never violate the global no-oversell invariant.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use consensusq::{QueueBinding, QueueOp, SimQueue};
use correctables::{Client, Correctable};
use icg_crdt::{EscrowBinding, EscrowOp, Sale, SimEscrow};

/// The outcome of one purchase attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Purchase {
    /// A ticket was secured.
    Confirmed {
        /// Whether the preliminary view confirmed it (fast path).
        via_prelim: bool,
        /// The ticket's queue element, when known.
        ticket: Option<String>,
    },
    /// No tickets left.
    SoldOut,
}

/// The retailer-side application.
pub struct TicketOffice {
    queue: SimQueue,
    client: Arc<Client<QueueBinding>>,
    /// Stock level below which purchases wait for the final view.
    pub threshold: u64,
}

impl TicketOffice {
    /// Opens an office over a queue, with the paper's threshold of 20.
    pub fn new(queue: SimQueue) -> Self {
        let client = Arc::new(Client::new(queue.binding()));
        TicketOffice {
            queue,
            client,
            threshold: 20,
        }
    }

    /// The underlying queue (for `settle` and timings).
    pub fn queue(&self) -> &SimQueue {
        &self.queue
    }

    /// Listing 5's `purchaseTicket`, verbatim in Correctables form:
    /// confirm on the preliminary when the stock is high, otherwise wait
    /// for the final (atomic) dequeue.
    pub fn purchase_ticket(&self) -> Correctable<Purchase> {
        let (out, handle) = Correctable::<Purchase>::pending();
        let done = Arc::new(AtomicBool::new(false));
        let threshold = self.threshold;
        let c = self.client.invoke(QueueOp::Dequeue);
        let h_u = handle.clone();
        let done_u = Arc::clone(&done);
        c.on_update(move |weak| {
            // `onUpdate`: many tickets left — buy on the preliminary.
            if weak.value.name.is_some() && weak.value.remaining > threshold {
                done_u.store(true, Ordering::Relaxed);
                let _ = h_u.close(
                    Purchase::Confirmed {
                        via_prelim: true,
                        ticket: weak.value.name.clone(),
                    },
                    weak.level,
                );
            }
        });
        let h_f = handle.clone();
        let done_f = done;
        c.on_final(move |strong| {
            // `onFinal`: if not already confirmed, the atomic result
            // decides — a ticket, or "Sold out. Sorry!".
            if !done_f.load(Ordering::Relaxed) {
                let outcome = match &strong.value.name {
                    Some(name) => Purchase::Confirmed {
                        via_prelim: false,
                        ticket: Some(name.clone()),
                    },
                    None => Purchase::SoldOut,
                };
                let _ = h_f.close(outcome, strong.level);
            }
        });
        let h_e = handle;
        c.on_error(move |e| {
            let _ = h_e.fail(e.clone());
        });
        out
    }
}

/// The escrow-segmented retailer: sells from the local replica's
/// segment without coordination, falling back to the strong transfer
/// path only when the segment runs dry.
pub struct EscrowOffice {
    store: SimEscrow,
    client: Arc<Client<EscrowBinding>>,
}

impl EscrowOffice {
    /// Opens an office over an escrow store.
    pub fn new(store: SimEscrow) -> Self {
        let client = Arc::new(Client::new(store.binding()));
        EscrowOffice { store, client }
    }

    /// The underlying store (for `settle` and timings).
    pub fn store(&self) -> &SimEscrow {
        &self.store
    }

    /// Buys one ticket. A sale the local segment covers confirms on the
    /// *weak* view — unlike Listing 5's threshold heuristic, the escrow
    /// split guarantees the preliminary can never be rolled back. A
    /// sale the segment cannot cover waits for the final view of the
    /// transfer round: another segment's surplus, or `SoldOut`.
    pub fn purchase_ticket(&self) -> Correctable<Purchase> {
        let (out, handle) = Correctable::<Purchase>::pending();
        let done = Arc::new(AtomicBool::new(false));
        let c = self.client.invoke(EscrowOp::Buy);
        let h_u = handle.clone();
        let done_u = Arc::clone(&done);
        c.on_update(move |weak| {
            // The weak view only ever reports a *fast* sale, and a fast
            // sale is already durable in the local segment: confirm.
            if let Sale::Confirmed { fast: true } = weak.value {
                done_u.store(true, Ordering::Relaxed);
                let _ = h_u.close(
                    Purchase::Confirmed {
                        via_prelim: true,
                        ticket: None,
                    },
                    weak.level,
                );
            }
        });
        let h_f = handle.clone();
        let done_f = done;
        c.on_final(move |strong| {
            if !done_f.load(Ordering::Relaxed) {
                let outcome = match strong.value {
                    Sale::Confirmed { .. } => Purchase::Confirmed {
                        via_prelim: false,
                        ticket: None,
                    },
                    // Buys never answer with a stock count; treat a
                    // miswired reply as a failed sale.
                    Sale::SoldOut | Sale::Stock(_) => Purchase::SoldOut,
                };
                let _ = h_f.close(outcome, strong.level);
            }
        });
        let h_e = handle;
        c.on_error(move |e| {
            let _ = h_e.fail(e.clone());
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensusq::ServerConfig;

    fn office(stock: u64) -> TicketOffice {
        let q = SimQueue::ec2(ServerConfig::default(), "IRL", "FRK", "FRK", 13);
        q.prefill(stock, 20);
        TicketOffice::new(q)
    }

    #[test]
    fn high_stock_confirms_on_preliminary() {
        let office = office(100);
        let p = office.purchase_ticket();
        office.queue().settle();
        match p.final_view().unwrap().value {
            Purchase::Confirmed { via_prelim, ticket } => {
                assert!(via_prelim, "stock of 100 must use the fast path");
                assert!(ticket.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        // The fast path closes at the weak level.
        assert_eq!(
            p.final_view().unwrap().level,
            correctables::ConsistencyLevel::WEAK
        );
    }

    #[test]
    fn low_stock_waits_for_final_atomic_view() {
        let office = office(5);
        let p = office.purchase_ticket();
        office.queue().settle();
        match p.final_view().unwrap().value {
            Purchase::Confirmed { via_prelim, ticket } => {
                assert!(!via_prelim, "stock of 5 must wait for the final");
                assert!(ticket.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            p.final_view().unwrap().level,
            correctables::ConsistencyLevel::STRONG
        );
    }

    #[test]
    fn empty_queue_sells_out() {
        let office = office(0);
        let p = office.purchase_ticket();
        office.queue().settle();
        assert_eq!(p.final_view().unwrap().value, Purchase::SoldOut);
    }

    #[test]
    fn draining_the_stock_never_oversells() {
        let office = office(30);
        let mut confirmed = 0;
        let mut sold_out = false;
        for _ in 0..35 {
            let p = office.purchase_ticket();
            office.queue().settle();
            match p.final_view().unwrap().value {
                Purchase::Confirmed { .. } => confirmed += 1,
                Purchase::SoldOut => {
                    sold_out = true;
                    break;
                }
            }
        }
        assert_eq!(confirmed, 30, "exactly the stock is sold");
        assert!(sold_out);
    }

    fn escrow_office(allocs: Vec<u64>, seed: u64) -> EscrowOffice {
        EscrowOffice::new(SimEscrow::ec2(allocs, "FRK", seed, false))
    }

    #[test]
    fn escrow_covered_sale_confirms_on_the_preliminary() {
        let office = escrow_office(vec![4, 4, 4], 5);
        let p = office.purchase_ticket();
        office.store().settle();
        match p.final_view().unwrap().value {
            Purchase::Confirmed { via_prelim, .. } => {
                assert!(via_prelim, "a covered sale must use the fast path");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            p.final_view().unwrap().level,
            correctables::ConsistencyLevel::WEAK
        );
    }

    #[test]
    fn escrow_exhausted_segment_waits_for_a_transfer() {
        // The client's origin owns nothing: every sale pulls a grant.
        let store = SimEscrow::ec2(vec![0, 5, 5], "FRK", 9, false);
        store.set_local_origin(true);
        let office = EscrowOffice::new(store);
        let p = office.purchase_ticket();
        office.store().settle();
        match p.final_view().unwrap().value {
            Purchase::Confirmed { via_prelim, .. } => {
                assert!(!via_prelim, "an uncovered sale must pay the transfer round");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            p.final_view().unwrap().level,
            correctables::ConsistencyLevel::STRONG
        );
    }

    #[test]
    fn escrow_draining_the_stock_never_oversells() {
        let office = escrow_office(vec![2, 2, 2], 13);
        let mut confirmed = 0;
        let mut sold_out = 0;
        for _ in 0..9 {
            let p = office.purchase_ticket();
            office.store().settle();
            match p.final_view().unwrap().value {
                Purchase::Confirmed { .. } => confirmed += 1,
                Purchase::SoldOut => sold_out += 1,
            }
        }
        assert_eq!(confirmed, 6, "exactly the stock is sold");
        assert_eq!(sold_out, 3);
    }
}
