//! `icg-replicad` — hosts one quorum-store replica over TCP.
//!
//! A replica set is `N` of these processes, each listing the others as
//! peers. Any replica can coordinate any client's operations; clients
//! (`icg-loadgen`, or anything built on `icg_net::TcpBinding`) connect
//! to one of them and fail over down their list.
//!
//! ```text
//! icg-replicad --id 0 --listen 127.0.0.1:4701 \
//!     --peers 127.0.0.1:4702,127.0.0.1:4703 [--op-timeout-ms 5000] \
//!     [--levels audit:30,archive:50]
//! ```
//!
//! `--levels name:rank,...` registers deployment-specific consistency
//! levels into the lattice before the listener starts; the version-2
//! handshake then advertises them to every connecting client alongside
//! the builtin `weak < update < causal < strong`. The builtins are
//! always served; a custom level is advertised by name and rank so
//! clients can target it once a binding serves it.
//!
//! The process serves until killed; peer links retry forever, so start
//! order does not matter. See `OPERATIONS.md` for the full runbook.

use std::net::SocketAddr;
use std::time::Duration;

use correctables::ConsistencyLevel;
use icg_apps::cli::{die, Flags};
use icg_net::{ReplicaServer, ServerConfig, Transport};

const KNOWN: &[&str] = &[
    "id",
    "listen",
    "peers",
    "op-timeout-ms",
    "peer-retry-ms",
    "peer-retry-cap-ms",
    "transport",
    "loops",
    "levels",
    "help",
];

const USAGE: &str = "icg-replicad --id N --listen ADDR [--peers ADDR,ADDR,...]
    [--op-timeout-ms 5000] [--peer-retry-ms 200] [--peer-retry-cap-ms 5000]
    [--transport reactor|blocking] [--loops 1] [--levels name:rank,...]

Hosts one quorum-store replica over TCP. --id must be unique across the
replica set (it is the write-version tiebreak). --peers lists the OTHER
replicas; omit it for a single-replica deployment. --transport selects
the I/O engine (default: the epoll reactor); --loops spreads reactor
client traffic over that many event loops. --levels registers extra
consistency levels (beyond the builtin weak<update<causal<strong) into
the lattice; the handshake advertises them to every client.";

fn main() {
    let flags = match Flags::parse(std::env::args().skip(1), KNOWN) {
        Ok(f) => f,
        Err(e) => die(&format!("{e}\n\n{USAGE}")),
    };
    if flags.has("help") {
        println!("{USAGE}");
        return;
    }
    let id = flags.get_u64("id", 0) as u32;
    let listen = flags.get_or("listen", "127.0.0.1:4701");
    let peers: Vec<SocketAddr> = flags
        .get_or("peers", "")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| die(&format!("--peers: '{s}' is not host:port")))
        })
        .collect();

    // Deployment-specific levels join the lattice before the listener
    // starts, so the very first handshake already advertises them.
    for spec in flags
        .get_or("levels", "")
        .split(',')
        .filter(|s| !s.is_empty())
    {
        let Some((name, rank)) = spec.split_once(':') else {
            die(&format!("--levels: '{spec}' is not name:rank"));
        };
        let rank: u8 = rank
            .parse()
            .unwrap_or_else(|_| die(&format!("--levels: rank in '{spec}' is not 0-255")));
        ConsistencyLevel::register(name, rank)
            .unwrap_or_else(|e| die(&format!("--levels: cannot register '{spec}': {e}")));
    }

    let transport = match flags.get_or("transport", "reactor").as_str() {
        "reactor" => Transport::Reactor,
        "blocking" => Transport::Blocking,
        other => die(&format!(
            "--transport must be reactor|blocking, got '{other}'"
        )),
    };
    let cfg = ServerConfig {
        id,
        op_timeout: Duration::from_millis(flags.get_u64("op-timeout-ms", 5000)),
        peer_retry: Duration::from_millis(flags.get_u64("peer-retry-ms", 200)),
        peer_retry_cap: Duration::from_millis(flags.get_u64("peer-retry-cap-ms", 5000)),
        transport,
        loops: flags.get_u64("loops", 1).max(1) as usize,
    };
    let server = ReplicaServer::bind(&listen, cfg)
        .unwrap_or_else(|e| die(&format!("cannot bind {listen}: {e}")));
    let addr = server.local_addr();
    let _handle = server.start(peers.clone());
    // One parseable readiness line; cluster_demo.sh waits for it.
    let mut registered = ConsistencyLevel::all_registered();
    registered.sort();
    let directory: Vec<String> = registered
        .iter()
        .map(|l| format!("{}:{}", l.name(), l.rank()))
        .collect();
    println!(
        "icg-replicad[{id}] listening on {addr} ({} peers, levels {})",
        peers.len(),
        directory.join("<"),
    );

    // Serve until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
