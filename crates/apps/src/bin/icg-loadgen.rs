//! `icg-loadgen` — a closed-loop load driver for a TCP replica set.
//!
//! Spawns `--clients` threads, each with its own `TcpBinding` and a
//! YCSB-Zipfian key chooser, running a closed loop (one outstanding
//! operation per client) of reads and writes against the cluster. At
//! the end it prints, **per consistency level**, the p50/p95/p99 view
//! latency — for ICG reads that is two lines, one for the preliminary
//! (weak) view and one for the final (strong) view, which is the
//! incremental-consistency gap the paper measures.
//!
//! ```text
//! icg-loadgen --replicas 127.0.0.1:4701,127.0.0.1:4702,127.0.0.1:4703 \
//!     --clients 4 --ops 2000 --keys 1000 --write-ratio 0.1 \
//!     [--mode icg|weak|strong] [--confirm] [--r 2] [--value-bytes 128]
//! ```
//!
//! Exit status is nonzero if any operation failed, so scripts can use a
//! plain run as a cluster health check (`--allow-failures N` relaxes
//! that for fault drills). See `OPERATIONS.md` for reading the output.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use icg_apps::cli::{die, Flags};
use icg_net::{TcpBinding, TcpConfig};

use correctables::{Client, ConsistencyLevel};
use parking_lot::Mutex;
use quorumstore::{Key, StoreOp, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ycsb::Zipfian;

const KNOWN: &[&str] = &[
    "replicas",
    "clients",
    "ops",
    "keys",
    "write-ratio",
    "mode",
    "confirm",
    "r",
    "value-bytes",
    "timeout-ms",
    "seed",
    "no-preload",
    "allow-failures",
    "help",
];

const USAGE: &str = "icg-loadgen --replicas ADDR,ADDR,... [--clients 4] [--ops 2000]
    [--keys 1000] [--write-ratio 0.1] [--mode icg|weak|strong] [--confirm]
    [--r 2] [--value-bytes 128] [--timeout-ms 2000] [--seed 42]
    [--no-preload] [--allow-failures N]

Closed-loop Zipfian load against a TCP replica set; prints p50/p95/p99
per consistency level. --mode icg (default) requests weak+strong on
every read (preliminary flush + quorum view); weak/strong request a
single level.";

/// One recorded view latency, tagged with its consistency level.
struct Sample {
    level: ConsistencyLevel,
    micros: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Icg,
    Weak,
    Strong,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1000.0
}

fn main() {
    let flags = match Flags::parse(std::env::args().skip(1), KNOWN) {
        Ok(f) => f,
        Err(e) => die(&format!("{e}\n\n{USAGE}")),
    };
    if flags.has("help") {
        println!("{USAGE}");
        return;
    }
    let replicas: Vec<SocketAddr> = flags
        .get_or("replicas", "")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| die(&format!("--replicas: '{s}' is not host:port")))
        })
        .collect();
    if replicas.is_empty() {
        die(&format!("--replicas is required\n\n{USAGE}"));
    }
    let clients = flags.get_u64("clients", 4).max(1);
    let ops_per_client = flags.get_u64("ops", 2000);
    let keys = flags.get_u64("keys", 1000).max(1);
    let write_ratio = flags.get_f64("write-ratio", 0.1).clamp(0.0, 1.0);
    let value_bytes = flags.get_u64("value-bytes", 128) as u32;
    let r_strong = flags.get_u64("r", 2) as u8;
    let confirm = flags.has("confirm");
    let timeout = Duration::from_millis(flags.get_u64("timeout-ms", 2000));
    let seed = flags.get_u64("seed", 42);
    let allow_failures = flags.get_u64("allow-failures", 0);
    let mode = match flags.get_or("mode", "icg").as_str() {
        "icg" => Mode::Icg,
        "weak" => Mode::Weak,
        "strong" => Mode::Strong,
        other => die(&format!("--mode must be icg|weak|strong, got '{other}'")),
    };

    // Client ids live past the replica-id space (replicas use 0..n).
    let client_id_base: u64 = 1 << 20;

    let connect = |client_id: u64| -> TcpBinding {
        let mut cfg = TcpConfig::new(replicas.clone(), client_id);
        cfg.r_strong = r_strong;
        cfg.confirm = confirm;
        cfg.op_timeout = timeout;
        // A freshly booted cluster may still be binding: retry the
        // initial dial for a few seconds before giving up, so scripts
        // can start replicas and loadgen back-to-back.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpBinding::connect(cfg.clone()) {
                Ok(b) => return b,
                Err(e) if Instant::now() >= deadline => {
                    die(&format!("cannot reach any replica: {e}"))
                }
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    };

    // Preload: every key written once so reads return real records.
    if !flags.has("no-preload") {
        let binding = connect(client_id_base - 1);
        let client = Client::new(binding.clone());
        for k in 0..keys {
            client
                .invoke_strong(StoreOp::Write(Key::plain(k), Value::Opaque(value_bytes)))
                .wait_final(Duration::from_secs(10))
                .unwrap_or_else(|e| die(&format!("preload write of key {k} failed: {e}")));
        }
        binding.shutdown();
        eprintln!("preloaded {keys} keys");
    }

    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let failures = Arc::new(Mutex::new(0u64));

    // Connect every client before starting the clock: the initial dial
    // may retry for seconds against a still-booting cluster, and that
    // setup time must not dilute the measured throughput window.
    let bindings: Vec<TcpBinding> = (0..clients).map(|c| connect(client_id_base + c)).collect();
    let start = Instant::now();

    let mut joins = Vec::new();
    for (c, binding) in bindings.into_iter().enumerate() {
        let c = c as u64;
        let samples = Arc::clone(&samples);
        let failures = Arc::clone(&failures);
        joins.push(std::thread::spawn(move || {
            let client = Client::new(binding.clone());
            let mut rng = SmallRng::seed_from_u64(seed ^ (c.wrapping_mul(0x9E37_79B9)));
            let zipf = Zipfian::new(keys);
            let mut local: Vec<Sample> = Vec::with_capacity(ops_per_client as usize * 2);
            let mut failed = 0u64;
            for _ in 0..ops_per_client {
                let key = Key::plain(zipf.next(&mut rng));
                let issued = Instant::now();
                let c = if rng.gen::<f64>() < write_ratio {
                    client.invoke_strong(StoreOp::Write(key, Value::Opaque(value_bytes)))
                } else {
                    match mode {
                        Mode::Icg => client.invoke(StoreOp::Read(key)),
                        Mode::Weak => client.invoke_weak(StoreOp::Read(key)),
                        Mode::Strong => client.invoke_strong(StoreOp::Read(key)),
                    }
                };
                // Record every preliminary view's latency at its level.
                let prelim_samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
                {
                    let sink = Arc::clone(&prelim_samples);
                    c.on_update(move |view| {
                        sink.lock().push(Sample {
                            level: view.level,
                            micros: issued.elapsed().as_micros() as u64,
                        });
                    });
                }
                match c.wait_final(timeout + Duration::from_secs(1)) {
                    Ok(view) => {
                        local.append(&mut prelim_samples.lock());
                        local.push(Sample {
                            level: view.level,
                            micros: issued.elapsed().as_micros() as u64,
                        });
                    }
                    Err(_) => failed += 1,
                }
            }
            samples.lock().append(&mut local);
            *failures.lock() += failed;
            binding.shutdown();
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    let elapsed = start.elapsed();

    // Report: one line per level, weakest first.
    let samples = samples.lock();
    let mut levels: Vec<ConsistencyLevel> = Vec::new();
    for s in samples.iter() {
        if !levels.contains(&s.level) {
            levels.push(s.level);
        }
    }
    levels.sort();
    println!(
        "ran {} ops over {} clients in {:.2}s ({} replicas, mode {}, R={r_strong}{})",
        clients * ops_per_client,
        clients,
        elapsed.as_secs_f64(),
        replicas.len(),
        flags.get_or("mode", "icg"),
        if confirm { ", confirm" } else { "" },
    );
    for level in levels {
        let mut lat: Vec<u64> = samples
            .iter()
            .filter(|s| s.level == level)
            .map(|s| s.micros)
            .collect();
        lat.sort_unstable();
        println!(
            "level {:<7} n={:<6} p50={:.2}ms p95={:.2}ms p99={:.2}ms",
            level.name(),
            lat.len(),
            percentile(&lat, 50.0),
            percentile(&lat, 95.0),
            percentile(&lat, 99.0),
        );
    }
    let total_final: u64 = clients * ops_per_client - *failures.lock();
    println!(
        "throughput: {:.0} ops/s (closed loop), failed: {}",
        total_final as f64 / elapsed.as_secs_f64(),
        *failures.lock(),
    );
    if *failures.lock() > allow_failures {
        std::process::exit(1);
    }
}
