//! `icg-loadgen` — closed- and open-loop load drivers for a TCP replica
//! set.
//!
//! **Closed loop** (default): `--clients` threads, each with its own
//! `TcpBinding` and a YCSB-Zipfian key chooser, one outstanding
//! operation per client. At the end it prints, **per consistency
//! level**, the p50/p95/p99 view latency — for ICG reads that is two
//! lines, one for the preliminary (weak) view and one for the final
//! (strong) view, which is the incremental-consistency gap the paper
//! measures.
//!
//! **Open loop** (`--open-loop`): `--connections` bindings multiplexed
//! over the reactor's event loops, with operations issued at a fixed
//! aggregate `--rate` for `--duration-secs` regardless of completions —
//! the connection-scaling workload the epoll transport exists for.
//! Completions are recorded by callback; nothing blocks the issuers.
//!
//! ```text
//! icg-loadgen --replicas 127.0.0.1:4701,127.0.0.1:4702,127.0.0.1:4703 \
//!     --clients 4 --ops 2000 --keys 1000 --write-ratio 0.1 \
//!     [--mode icg|weak|strong] [--confirm] [--r 2] [--value-bytes 128]
//! icg-loadgen --replicas ... --open-loop --connections 10000 \
//!     --rate 15000 --duration-secs 20 [--bench-json lines.jsonl]
//! ```
//!
//! **Spec-store loop** (`--levels weak,update,causal,strong`): drives
//! the version-2 spec store through `TcpSpecBinding` instead of the
//! quorum store, requesting exactly the named consistency levels on
//! every operation. Each view is timed at its own level, so the report
//! shows the full refinement staircase — e.g. how much sooner an
//! `update` view lands than the `causal` and `strong` views behind it.
//! Level names resolve through the registry, so a custom level a
//! deployment registered (and the replicas advertise in their handshake
//! directory) works here with no loadgen changes.
//!
//! `--bench-json FILE` appends per-run records in the perf-gate JSONL
//! schema (`{"suite","benchmark","mean_ns",...}`) so `perf_gate merge`
//! folds socket-level results into the committed `BENCH_*.json`
//! trajectory next to the microbenchmarks. Throughput is recorded as
//! its inverse, ns/op, to keep the gate's lower-is-better comparison.
//!
//! Exit status is nonzero if any operation failed, so scripts can use a
//! plain run as a cluster health check (`--allow-failures N` relaxes
//! that for fault drills). See `OPERATIONS.md` for reading the output.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use icg_apps::cli::{die, Flags};
use icg_net::{SpecOp, SpecTcpConfig, TcpBinding, TcpConfig, TcpSpecBinding, Transport};

use correctables::spec::RegOp;
use correctables::{Client, ConsistencyLevel, LevelSelection};
use parking_lot::Mutex;
use quorumstore::{Key, StoreOp, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ycsb::Zipfian;

const KNOWN: &[&str] = &[
    "replicas",
    "clients",
    "ops",
    "keys",
    "write-ratio",
    "mode",
    "levels",
    "confirm",
    "r",
    "value-bytes",
    "timeout-ms",
    "seed",
    "no-preload",
    "allow-failures",
    "transport",
    "open-loop",
    "connections",
    "rate",
    "duration-secs",
    "bench-json",
    "bench-name",
    "help",
];

const USAGE: &str = "icg-loadgen --replicas ADDR,ADDR,... [--clients 4] [--ops 2000]
    [--keys 1000] [--write-ratio 0.1] [--mode icg|weak|strong] [--confirm]
    [--r 2] [--value-bytes 128] [--timeout-ms 2000] [--seed 42]
    [--no-preload] [--allow-failures N] [--transport reactor|blocking]
    [--open-loop --connections 1000 --rate 5000 --duration-secs 10]
    [--levels weak,update,causal,strong]
    [--bench-json FILE] [--bench-name NAME]

Zipfian load against a TCP replica set; prints p50/p95/p99 per
consistency level. --mode icg (default) requests weak+strong on every
read (preliminary flush + quorum view); weak/strong request a single
level. --open-loop issues at a fixed aggregate --rate across
--connections bindings for --duration-secs, independent of completions.
--levels switches to the spec-store workload: every operation requests
exactly the named levels (registry names, so custom levels work) and
each view is timed at its own level.";

/// One recorded view latency, tagged with its consistency level.
struct Sample {
    level: ConsistencyLevel,
    micros: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Icg,
    Weak,
    Strong,
}

/// Open-loop issuers stall (instead of queueing unboundedly) past this
/// many uncompleted operations.
const MAX_OUTSTANDING: u64 = 50_000;

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1000.0
}

/// Appends one perf-gate JSONL record per observed level plus an
/// aggregate ns/op row to `path`.
fn emit_bench_json(path: &str, name: &str, samples: &[Sample], completed: u64, elapsed: Duration) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut levels: Vec<ConsistencyLevel> = Vec::new();
    for s in samples {
        if !levels.contains(&s.level) {
            levels.push(s.level);
        }
    }
    levels.sort();
    for level in levels {
        let mut lat: Vec<u64> = samples
            .iter()
            .filter(|s| s.level == level)
            .map(|s| s.micros)
            .collect();
        lat.sort_unstable();
        let mean = lat.iter().sum::<u64>() as f64 / lat.len().max(1) as f64 * 1000.0;
        let _ = writeln!(
            out,
            "{{\"suite\": \"net\", \"benchmark\": \"{name}/{}-latency\", \
             \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"samples\": {}}}",
            level.name(),
            mean,
            percentile(&lat, 50.0) * 1e6,
            percentile(&lat, 95.0) * 1e6,
            lat.len(),
        );
    }
    if completed > 0 {
        let ns_per_op = elapsed.as_nanos() as f64 / completed as f64;
        let _ = writeln!(
            out,
            "{{\"suite\": \"net\", \"benchmark\": \"{name}/ns-per-op\", \
             \"mean_ns\": {ns_per_op:.1}, \"median_ns\": {ns_per_op:.1}, \
             \"p95_ns\": {ns_per_op:.1}, \"samples\": {completed}}}",
        );
    }
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap_or_else(|e| die(&format!("cannot open --bench-json {path}: {e}")));
    f.write_all(out.as_bytes())
        .unwrap_or_else(|e| die(&format!("cannot write --bench-json {path}: {e}")));
    eprintln!("bench-json: appended '{name}' records to {path}");
}

fn main() {
    let flags = match Flags::parse(std::env::args().skip(1), KNOWN) {
        Ok(f) => f,
        Err(e) => die(&format!("{e}\n\n{USAGE}")),
    };
    if flags.has("help") {
        println!("{USAGE}");
        return;
    }
    let replicas: Vec<SocketAddr> = flags
        .get_or("replicas", "")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| die(&format!("--replicas: '{s}' is not host:port")))
        })
        .collect();
    if replicas.is_empty() {
        die(&format!("--replicas is required\n\n{USAGE}"));
    }
    let clients = flags.get_u64("clients", 4).max(1);
    let ops_per_client = flags.get_u64("ops", 2000);
    let keys = flags.get_u64("keys", 1000).max(1);
    let write_ratio = flags.get_f64("write-ratio", 0.1).clamp(0.0, 1.0);
    let value_bytes = flags.get_u64("value-bytes", 128) as u32;
    let r_strong = flags.get_u64("r", 2) as u8;
    let confirm = flags.has("confirm");
    let timeout = Duration::from_millis(flags.get_u64("timeout-ms", 2000));
    let seed = flags.get_u64("seed", 42);
    let allow_failures = flags.get_u64("allow-failures", 0);
    let mode = match flags.get_or("mode", "icg").as_str() {
        "icg" => Mode::Icg,
        "weak" => Mode::Weak,
        "strong" => Mode::Strong,
        other => die(&format!("--mode must be icg|weak|strong, got '{other}'")),
    };
    let transport = match flags.get_or("transport", "reactor").as_str() {
        "reactor" => Transport::Reactor,
        "blocking" => Transport::Blocking,
        other => die(&format!(
            "--transport must be reactor|blocking, got '{other}'"
        )),
    };
    let open_loop = flags.has("open-loop");
    let bench_json = flags.get_or("bench-json", "");
    // --levels NAMES selects the spec-store workload; each name must
    // resolve in the level registry (builtins are pre-registered, custom
    // levels come from the deployment's own registration).
    let spec_levels: Option<Vec<ConsistencyLevel>> = {
        let raw = flags.get_or("levels", "");
        if raw.is_empty() {
            None
        } else {
            let parsed: Vec<ConsistencyLevel> = raw
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|name| {
                    ConsistencyLevel::lookup(name).unwrap_or_else(|| {
                        die(&format!("--levels: '{name}' is not a registered level"))
                    })
                })
                .collect();
            if let Err(e) = correctables::LevelSet::try_of(&parsed) {
                die(&format!("--levels: {e}"));
            }
            Some(parsed)
        }
    };
    if spec_levels.is_some() && open_loop {
        die("--levels (spec-store workload) is closed-loop only; drop --open-loop");
    }

    // Client ids live past the replica-id space (replicas use 0..n).
    let client_id_base: u64 = 1 << 20;

    let connect = |client_id: u64| -> TcpBinding {
        let mut cfg = TcpConfig::new(replicas.clone(), client_id);
        cfg.r_strong = r_strong;
        cfg.confirm = confirm;
        cfg.op_timeout = timeout;
        cfg.transport = transport;
        // A freshly booted cluster may still be binding: retry the
        // initial dial for a few seconds before giving up, so scripts
        // can start replicas and loadgen back-to-back.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpBinding::connect(cfg.clone()) {
                Ok(b) => return b,
                Err(e) if Instant::now() >= deadline => {
                    die(&format!("cannot reach any replica: {e}"))
                }
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    };

    // Preload: every key written once so reads return real records.
    // The spec store starts empty by design (unknown keys read 0), so
    // the spec workload skips it.
    if !flags.has("no-preload") && spec_levels.is_none() {
        let binding = connect(client_id_base - 1);
        let client = Client::new(binding.clone());
        for k in 0..keys {
            client
                .invoke_strong(StoreOp::Write(Key::plain(k), Value::Opaque(value_bytes)))
                .wait_final(Duration::from_secs(10))
                .unwrap_or_else(|e| die(&format!("preload write of key {k} failed: {e}")));
        }
        binding.shutdown();
        eprintln!("preloaded {keys} keys");
    }

    let (samples, issued, failures, elapsed) = if let Some(levels) = &spec_levels {
        run_spec_loop(
            &replicas,
            levels,
            clients,
            ops_per_client,
            keys,
            write_ratio,
            seed,
            timeout,
            client_id_base,
        )
    } else if open_loop {
        run_open_loop(
            &flags,
            connect,
            mode,
            keys,
            write_ratio,
            value_bytes,
            seed,
            timeout,
        )
    } else {
        run_closed_loop(
            &flags,
            connect,
            mode,
            clients,
            ops_per_client,
            keys,
            write_ratio,
            value_bytes,
            seed,
            timeout,
            client_id_base,
        )
    };

    // Report: one line per level, weakest first.
    let mut levels: Vec<ConsistencyLevel> = Vec::new();
    for s in samples.iter() {
        if !levels.contains(&s.level) {
            levels.push(s.level);
        }
    }
    levels.sort();
    for level in levels {
        let mut lat: Vec<u64> = samples
            .iter()
            .filter(|s| s.level == level)
            .map(|s| s.micros)
            .collect();
        lat.sort_unstable();
        println!(
            "level {:<7} n={:<6} p50={:.2}ms p95={:.2}ms p99={:.2}ms",
            level.name(),
            lat.len(),
            percentile(&lat, 50.0),
            percentile(&lat, 95.0),
            percentile(&lat, 99.0),
        );
    }
    let total_final = issued - failures;
    println!(
        "throughput: {:.0} ops/s ({} loop), failed: {}",
        total_final as f64 / elapsed.as_secs_f64(),
        if open_loop { "open" } else { "closed" },
        failures,
    );
    if !bench_json.is_empty() {
        let default_name = if open_loop {
            format!("open-{}c", flags.get_u64("connections", 64))
        } else if spec_levels.is_some() {
            format!("spec-{clients}c")
        } else {
            format!("closed-{clients}c")
        };
        let name = flags.get_or("bench-name", &default_name);
        emit_bench_json(&bench_json, &name, &samples, total_final, elapsed);
    }
    if failures > allow_failures {
        std::process::exit(1);
    }
}

/// The original driver: one outstanding op per client thread.
#[allow(clippy::too_many_arguments)]
fn run_closed_loop(
    flags: &Flags,
    connect: impl Fn(u64) -> TcpBinding,
    mode: Mode,
    clients: u64,
    ops_per_client: u64,
    keys: u64,
    write_ratio: f64,
    value_bytes: u32,
    seed: u64,
    timeout: Duration,
    client_id_base: u64,
) -> (Vec<Sample>, u64, u64, Duration) {
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let failures = Arc::new(Mutex::new(0u64));

    // Connect every client before starting the clock: the initial dial
    // may retry for seconds against a still-booting cluster, and that
    // setup time must not dilute the measured throughput window.
    let bindings: Vec<TcpBinding> = (0..clients).map(|c| connect(client_id_base + c)).collect();
    let start = Instant::now();

    let mut joins = Vec::new();
    for (c, binding) in bindings.into_iter().enumerate() {
        let c = c as u64;
        let samples = Arc::clone(&samples);
        let failures = Arc::clone(&failures);
        joins.push(std::thread::spawn(move || {
            let client = Client::new(binding.clone());
            let mut rng = SmallRng::seed_from_u64(seed ^ (c.wrapping_mul(0x9E37_79B9)));
            let zipf = Zipfian::new(keys);
            let mut local: Vec<Sample> = Vec::with_capacity(ops_per_client as usize * 2);
            let mut failed = 0u64;
            for _ in 0..ops_per_client {
                let key = Key::plain(zipf.next(&mut rng));
                let issued = Instant::now();
                let c = if rng.gen::<f64>() < write_ratio {
                    client.invoke_strong(StoreOp::Write(key, Value::Opaque(value_bytes)))
                } else {
                    match mode {
                        Mode::Icg => client.invoke(StoreOp::Read(key)),
                        Mode::Weak => client.invoke_weak(StoreOp::Read(key)),
                        Mode::Strong => client.invoke_strong(StoreOp::Read(key)),
                    }
                };
                // Record every preliminary view's latency at its level.
                let prelim_samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
                {
                    let sink = Arc::clone(&prelim_samples);
                    c.on_update(move |view| {
                        sink.lock().push(Sample {
                            level: view.level,
                            micros: issued.elapsed().as_micros() as u64,
                        });
                    });
                }
                match c.wait_final(timeout + Duration::from_secs(1)) {
                    Ok(view) => {
                        local.append(&mut prelim_samples.lock());
                        local.push(Sample {
                            level: view.level,
                            micros: issued.elapsed().as_micros() as u64,
                        });
                    }
                    Err(_) => failed += 1,
                }
            }
            samples.lock().append(&mut local);
            *failures.lock() += failed;
            binding.shutdown();
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    println!(
        "ran {} ops over {} clients in {:.2}s (mode {}, R={}{})",
        clients * ops_per_client,
        clients,
        elapsed.as_secs_f64(),
        flags.get_or("mode", "icg"),
        flags.get_u64("r", 2),
        if flags.has("confirm") {
            ", confirm"
        } else {
            ""
        },
    );
    let total = clients * ops_per_client;
    let failed = *failures.lock();
    let samples = match Arc::try_unwrap(samples) {
        Ok(m) => m.into_inner(),
        Err(arc) => std::mem::take(&mut *arc.lock()),
    };
    (samples, total, failed, elapsed)
}

/// The spec-store driver: a closed loop over `TcpSpecBinding`, every
/// operation a Register read or write requesting exactly the named
/// levels. Each view is recorded at its own level, so the report shows
/// the whole refinement staircase (e.g. update landing well before
/// causal and strong).
#[allow(clippy::too_many_arguments)]
fn run_spec_loop(
    replicas: &[SocketAddr],
    levels: &[ConsistencyLevel],
    clients: u64,
    ops_per_client: u64,
    keys: u64,
    write_ratio: f64,
    seed: u64,
    timeout: Duration,
    client_id_base: u64,
) -> (Vec<Sample>, u64, u64, Duration) {
    let connect = |client_id: u64, addr: SocketAddr| -> TcpSpecBinding {
        let mut cfg = SpecTcpConfig::new(addr, client_id);
        cfg.op_timeout = timeout;
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpSpecBinding::connect(cfg) {
                Ok(b) => return b,
                Err(e) if Instant::now() >= deadline => {
                    die(&format!("cannot reach replica {addr}: {e}"))
                }
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    };
    // Clients fan out round-robin across the replica set — the spec
    // binding speaks to one replica, which gossips on their behalf.
    let bindings: Vec<TcpSpecBinding> = (0..clients)
        .map(|c| connect(client_id_base + c, replicas[c as usize % replicas.len()]))
        .collect();

    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let failures = Arc::new(Mutex::new(0u64));
    let selection = LevelSelection::only(levels);
    let start = Instant::now();

    let mut joins = Vec::new();
    for (c, binding) in bindings.into_iter().enumerate() {
        let c = c as u64;
        let samples = Arc::clone(&samples);
        let failures = Arc::clone(&failures);
        let selection = selection.clone();
        joins.push(std::thread::spawn(move || {
            let client = Client::new(binding.clone());
            let mut rng = SmallRng::seed_from_u64(seed ^ (c.wrapping_mul(0x9E37_79B9)));
            let zipf = Zipfian::new(keys);
            let mut local: Vec<Sample> = Vec::with_capacity(ops_per_client as usize * 4);
            let mut failed = 0u64;
            for _ in 0..ops_per_client {
                let key = zipf.next(&mut rng);
                let op = if rng.gen::<f64>() < write_ratio {
                    SpecOp::Reg(RegOp::Write(key, rng.gen()))
                } else {
                    SpecOp::Reg(RegOp::Read(key))
                };
                let issued = Instant::now();
                let corr = client.invoke_with(op, &selection);
                let prelim_samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
                {
                    let sink = Arc::clone(&prelim_samples);
                    corr.on_update(move |view| {
                        sink.lock().push(Sample {
                            level: view.level,
                            micros: issued.elapsed().as_micros() as u64,
                        });
                    });
                }
                match corr.wait_final(timeout + Duration::from_secs(1)) {
                    Ok(view) => {
                        local.append(&mut prelim_samples.lock());
                        local.push(Sample {
                            level: view.level,
                            micros: issued.elapsed().as_micros() as u64,
                        });
                    }
                    Err(_) => failed += 1,
                }
            }
            samples.lock().append(&mut local);
            *failures.lock() += failed;
            binding.shutdown();
        }));
    }
    for j in joins {
        j.join().expect("spec client thread");
    }
    let elapsed = start.elapsed();
    let names: Vec<&str> = levels.iter().map(|l| l.name()).collect();
    println!(
        "ran {} spec ops over {} clients in {:.2}s (levels {})",
        clients * ops_per_client,
        clients,
        elapsed.as_secs_f64(),
        names.join(","),
    );
    let total = clients * ops_per_client;
    let failed = *failures.lock();
    let samples = match Arc::try_unwrap(samples) {
        Ok(m) => m.into_inner(),
        Err(arc) => std::mem::take(&mut *arc.lock()),
    };
    (samples, total, failed, elapsed)
}

/// The connection-scaling driver: `--connections` bindings sharing the
/// reactor's event loops, operations issued at a fixed aggregate
/// `--rate` without waiting for completions (recorded by callback).
#[allow(clippy::too_many_arguments)]
fn run_open_loop(
    flags: &Flags,
    connect: impl Fn(u64) -> TcpBinding,
    mode: Mode,
    keys: u64,
    write_ratio: f64,
    value_bytes: u32,
    seed: u64,
    timeout: Duration,
) -> (Vec<Sample>, u64, u64, Duration) {
    let connections = flags.get_u64("connections", 64).max(1);
    let rate = flags.get_f64("rate", 5000.0);
    if rate <= 0.0 {
        die("--rate must be > 0 in open-loop mode");
    }
    let duration = Duration::from_secs(flags.get_u64("duration-secs", 10).max(1));
    let client_id_base: u64 = 1 << 21; // past closed-loop ids too

    let setup = Instant::now();
    let bindings: Vec<TcpBinding> = (0..connections)
        .map(|c| connect(client_id_base + c))
        .collect();
    eprintln!(
        "open-loop: {connections} connections established in {:.2}s",
        setup.elapsed().as_secs_f64()
    );

    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let issued = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let stalled = Arc::new(AtomicU64::new(0));

    let threads = (connections as usize).clamp(1, 4);
    let per_thread_rate = rate / threads as f64;
    let start = Instant::now();
    let deadline = start + duration;

    let mut joins = Vec::new();
    for t in 0..threads {
        // Each issuer owns the bindings with index ≡ t (mod threads).
        let my: Vec<Client<TcpBinding>> = bindings
            .iter()
            .skip(t)
            .step_by(threads)
            .map(|b| Client::new(b.clone()))
            .collect();
        let samples = Arc::clone(&samples);
        let issued = Arc::clone(&issued);
        let completed = Arc::clone(&completed);
        let failed = Arc::clone(&failed);
        let stalled = Arc::clone(&stalled);
        joins.push(std::thread::spawn(move || {
            let mut rng =
                SmallRng::seed_from_u64(seed ^ ((t as u64 + 1).wrapping_mul(0xA5A5_A5A5)));
            let zipf = Zipfian::new(keys);
            let mut sent = 0u64;
            let mut rr = 0usize;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                // Open loop: ops come due on the wall clock, not on
                // completions. Issue every op due by now, then nap.
                let due = ((now - start).as_secs_f64() * per_thread_rate) as u64;
                while sent < due {
                    let outstanding = issued.load(Ordering::Relaxed)
                        - completed.load(Ordering::Relaxed)
                        - failed.load(Ordering::Relaxed);
                    if outstanding > MAX_OUTSTANDING {
                        // The cluster is hopelessly behind the target
                        // rate; stalling beats queueing without bound.
                        stalled.fetch_add(due - sent, Ordering::Relaxed);
                        sent = due;
                        break;
                    }
                    let key = Key::plain(zipf.next(&mut rng));
                    let client = &my[rr];
                    rr = (rr + 1) % my.len();
                    let at = Instant::now();
                    let c = if rng.gen::<f64>() < write_ratio {
                        client.invoke_strong(StoreOp::Write(key, Value::Opaque(value_bytes)))
                    } else {
                        match mode {
                            Mode::Icg => client.invoke(StoreOp::Read(key)),
                            Mode::Weak => client.invoke_weak(StoreOp::Read(key)),
                            Mode::Strong => client.invoke_strong(StoreOp::Read(key)),
                        }
                    };
                    issued.fetch_add(1, Ordering::Relaxed);
                    sent += 1;
                    let sink = Arc::clone(&samples);
                    c.on_update(move |view| {
                        // Preliminary views only; the close lands below.
                        if view.level == ConsistencyLevel::WEAK {
                            sink.lock().push(Sample {
                                level: view.level,
                                micros: at.elapsed().as_micros() as u64,
                            });
                        }
                    });
                    let sink = Arc::clone(&samples);
                    let done = Arc::clone(&completed);
                    c.on_final(move |view| {
                        sink.lock().push(Sample {
                            level: view.level,
                            micros: at.elapsed().as_micros() as u64,
                        });
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                    let fails = Arc::clone(&failed);
                    c.on_error(move |_| {
                        fails.fetch_add(1, Ordering::Relaxed);
                    });
                    // The Correctable handle drops here; the callbacks
                    // keep the op's outcome observable.
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }));
    }
    for j in joins {
        j.join().expect("issuer thread");
    }
    // Drain: give in-flight ops one timeout to settle.
    let drain_deadline = Instant::now() + timeout + Duration::from_secs(2);
    loop {
        let settled = completed.load(Ordering::Relaxed) + failed.load(Ordering::Relaxed);
        if settled >= issued.load(Ordering::Relaxed) || Instant::now() >= drain_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let elapsed = start.elapsed();
    for b in &bindings {
        b.shutdown();
    }

    let issued_n = issued.load(Ordering::Relaxed);
    let completed_n = completed.load(Ordering::Relaxed);
    let failed_n = failed.load(Ordering::Relaxed);
    let stalled_n = stalled.load(Ordering::Relaxed);
    // Ops still unresolved at the drain deadline count as failures.
    let unresolved = issued_n - completed_n - failed_n;
    println!(
        "open loop: {connections} connections, target {rate:.0} ops/s for {:.0}s -> \
         issued {issued_n}, completed {completed_n}, failed {}, stalled {stalled_n}",
        duration.as_secs_f64(),
        failed_n + unresolved,
    );
    let samples = match Arc::try_unwrap(samples) {
        Ok(m) => m.into_inner(),
        Err(arc) => std::mem::take(&mut *arc.lock()),
    };
    (samples, issued_n, failed_n + unresolved, elapsed)
}
