//! The sharded YCSB load harness: a real-thread, wall-clock driver
//! pushing a keyed YCSB workload through the `icg-shard` routing layer.
//!
//! Unlike [`crate::driver::LoadDriver`] (which runs closed-loop inside
//! one simulated deployment's virtual time), this harness measures the
//! *routing layer itself*: ops flow through the consistent-hash ring and
//! the per-shard batching pipeline into in-memory shard backends, so
//! throughput is dominated by submission-path overhead — exactly what
//! batching is supposed to amortize. The `micro_shard` bench and the
//! sharded example both drive it.

use std::time::{Duration, Instant};

use correctables::{Client, Correctable, LevelSelection, State};
use icg_shard::{KvOp, MemBinding, PipelineConfig, ShardedBinding};
use ycsb::{Distribution, Op, Workload};

/// Configuration of one sharded YCSB run.
#[derive(Clone, Debug)]
pub struct ShardedYcsbConfig {
    /// Number of shards (and pipeline workers, in batched mode).
    pub shards: usize,
    /// YCSB record count.
    pub records: u64,
    /// Operations to issue.
    pub ops: u64,
    /// Producer-side batch size; `1` submits op by op through the plain
    /// `Binding` path.
    pub batch: usize,
    /// Per-shard worker tuning; `None` routes inline on the caller
    /// thread (no workers, no batching).
    pub pipeline: Option<PipelineConfig>,
    /// YCSB request distribution.
    pub distribution: Distribution,
    /// Read fraction in `[0, 1]` (YCSB A = 0.5, B = 0.95, C = 1.0).
    pub read_proportion: f64,
    /// Ring + workload seed.
    pub seed: u64,
}

impl Default for ShardedYcsbConfig {
    fn default() -> Self {
        ShardedYcsbConfig {
            shards: 8,
            records: 1_000,
            ops: 10_000,
            batch: 64,
            pipeline: Some(PipelineConfig::default()),
            distribution: Distribution::Zipfian,
            read_proportion: 0.5,
            seed: 42,
        }
    }
}

/// Results of one sharded YCSB run.
#[derive(Clone, Debug)]
pub struct ShardedYcsbStats {
    /// Operations that closed with a final view.
    pub completed: u64,
    /// Operations that closed exceptionally.
    pub failed: u64,
    /// Wall-clock time from first submission to full quiescence.
    pub elapsed: Duration,
    /// Ops routed to each shard.
    pub per_shard: Vec<u64>,
}

impl ShardedYcsbStats {
    /// Completed operations per wall-clock second.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn to_kv(op: Op) -> KvOp {
    match op {
        Op::Read(k) => KvOp::Get(k),
        Op::Update { key, len } => KvOp::Put(key, len as u64),
    }
}

/// Runs a YCSB workload across a sharded in-memory store and reports
/// wall-clock throughput plus the per-shard routing split.
pub fn run_sharded_ycsb(cfg: &ShardedYcsbConfig) -> ShardedYcsbStats {
    let shards: Vec<MemBinding> = (0..cfg.shards).map(|_| MemBinding::default()).collect();
    let router = match cfg.pipeline {
        Some(p) => ShardedBinding::pipelined(shards, 64, cfg.seed, p),
        None => ShardedBinding::inline(shards, 64, cfg.seed),
    };
    let workload = Workload {
        read_proportion: cfg.read_proportion,
        distribution: cfg.distribution,
        record_count: cfg.records,
        value_size: 100,
        update_size: 100,
    };
    // Pre-generate the op stream so the timed window measures the
    // routing layer, not the YCSB generator (micro_shard does the same).
    let mut gen = workload.generator(cfg.seed);
    let stream: Vec<KvOp> = (0..cfg.ops).map(|_| to_kv(gen.next_op())).collect();
    let mut pending: Vec<Correctable<u64>> = Vec::with_capacity(stream.len());
    let client = Client::new(router.clone());

    let start = Instant::now();
    if cfg.batch <= 1 {
        for &op in &stream {
            pending.push(client.invoke(op));
        }
    } else {
        for chunk in stream.chunks(cfg.batch) {
            pending.extend(router.invoke_batch(chunk.to_vec(), &LevelSelection::All));
        }
    }
    router.quiesce();
    let elapsed = start.elapsed();

    let mut completed = 0;
    let mut failed = 0;
    for c in &pending {
        match c.state() {
            State::Final => completed += 1,
            State::Error => failed += 1,
            State::Updating => {}
        }
    }
    ShardedYcsbStats {
        completed,
        failed,
        elapsed,
        per_shard: router.routed_per_shard(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_run_completes_every_op_across_all_shards() {
        let cfg = ShardedYcsbConfig {
            ops: 2_000,
            ..ShardedYcsbConfig::default()
        };
        let stats = run_sharded_ycsb(&cfg);
        assert_eq!(stats.completed, 2_000);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.per_shard.len(), 8);
        assert_eq!(stats.per_shard.iter().sum::<u64>(), 2_000);
        assert!(
            stats.per_shard.iter().all(|&n| n > 0),
            "a shard saw no traffic: {:?}",
            stats.per_shard
        );
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn unbatched_run_matches_semantics() {
        let cfg = ShardedYcsbConfig {
            ops: 500,
            batch: 1,
            pipeline: Some(PipelineConfig {
                queue_cap: 64,
                batch_max: 1,
            }),
            ..ShardedYcsbConfig::default()
        };
        let stats = run_sharded_ycsb(&cfg);
        assert_eq!(stats.completed, 500);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn inline_run_matches_semantics() {
        let cfg = ShardedYcsbConfig {
            ops: 500,
            pipeline: None,
            ..ShardedYcsbConfig::default()
        };
        let stats = run_sharded_ycsb(&cfg);
        assert_eq!(stats.completed, 500);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn zipfian_and_uniform_runs_agree_on_totals() {
        for dist in [Distribution::Zipfian, Distribution::Uniform] {
            let cfg = ShardedYcsbConfig {
                ops: 1_000,
                distribution: dist,
                ..ShardedYcsbConfig::default()
            };
            let stats = run_sharded_ycsb(&cfg);
            assert_eq!(stats.completed, 1_000, "{dist:?}");
        }
    }
}
