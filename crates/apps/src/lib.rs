//! # icg-apps — the paper's case-study applications
//!
//! Four applications built on the Correctables API, matching §4 and §6.3
//! of the paper:
//!
//! - [`ads`] — the ad-serving system (Listing 4): speculative prefetch of
//!   referenced ads on the preliminary reference list;
//! - [`twissandra`] — the microblogging service: two-step `get_timeline`
//!   with speculative tweet prefetch;
//! - [`tickets`] — the ticket seller (Listing 5): dynamic selection
//!   between preliminary and final dequeue results around a stock
//!   threshold;
//! - [`news`] — the smartphone news reader (Listing 6): progressive
//!   display over cache / causal / strong views.
//!
//! [`driver`] provides the closed-loop load machinery that runs these
//! applications under YCSB-style load for the Figure 11 harness,
//! [`sharded`] drives YCSB workloads through the `icg-shard` routing
//! layer on real threads, and [`dataset`] generates the paper-scale
//! synthetic datasets.
//!
//! The crate also ships the deployment binaries (`src/bin/`):
//! `icg-replicad` hosts one TCP quorum-store replica, `icg-loadgen`
//! drives a replica set with closed-loop Zipfian load and reports
//! per-level latency percentiles. [`cli`] is their shared flag parser;
//! `scripts/cluster_demo.sh` wires them into a one-command local
//! cluster (see `OPERATIONS.md`).

pub mod ads;
pub mod cli;
pub mod dataset;
pub mod driver;
pub mod news;
pub mod sharded;
pub mod tickets;
pub mod twissandra;

pub use ads::AdSystem;
pub use dataset::{AdsDataset, TwissandraDataset};
pub use driver::{LoadDriver, LoadStats, MeasuredOp};
pub use news::{NewsReader, Refresh, LATEST};
pub use sharded::{run_sharded_ycsb, ShardedYcsbConfig, ShardedYcsbStats};
pub use tickets::{EscrowOffice, Purchase, TicketOffice};
pub use twissandra::Twissandra;
