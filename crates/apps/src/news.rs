//! The smartphone news reader (§4.4, Listing 6).
//!
//! One logical `invoke(getLatestNews())` yields three progressively
//! fresher views — local cache, nearest backup (causal), distant primary
//! (strong) — and the display refreshes on each.

use std::sync::Arc;

use causalstore::{CacheOp, Item, SimCausal};
use correctables::{Client, ConsistencyLevel, Correctable};
use parking_lot::Mutex;

/// One display refresh.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Refresh {
    /// The consistency level of the view that triggered the refresh.
    pub level: ConsistencyLevel,
    /// The news-item ids shown.
    pub items: Vec<u64>,
}

/// The news reader application.
pub struct NewsReader {
    store: SimCausal,
    client: Client<causalstore::CausalBinding>,
    /// Every display refresh, in order (the "screen").
    pub display: Arc<Mutex<Vec<Refresh>>>,
}

/// The well-known key holding the latest news item ids.
pub const LATEST: &str = "news:latest";

impl NewsReader {
    /// Opens a reader over a cached causal store.
    pub fn new(store: SimCausal) -> Self {
        let client = Client::new(store.binding());
        NewsReader {
            store,
            client,
            display: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &SimCausal {
        &self.store
    }

    /// Listing 6: fetch the latest news, refreshing the display with every
    /// incremental view.
    pub fn get_latest_news(&self) -> Correctable<Option<Item>> {
        let c = self.client.invoke(CacheOp::Get(LATEST.into()));
        let disp_u = Arc::clone(&self.display);
        c.on_update(move |view| {
            disp_u.lock().push(Refresh {
                level: view.level,
                items: view
                    .value
                    .as_ref()
                    .map(|i| i.items.clone())
                    .unwrap_or_default(),
            });
        });
        let disp_f = Arc::clone(&self.display);
        c.on_final(move |view| {
            disp_f.lock().push(Refresh {
                level: view.level,
                items: view
                    .value
                    .as_ref()
                    .map(|i| i.items.clone())
                    .unwrap_or_default(),
            });
        });
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    #[test]
    fn display_refreshes_three_times_in_freshness_order() {
        let store = SimCausal::ec2("VRG", "IRL", 31);
        store.seed(LATEST, 1, vec![1, 2]);
        let reader = NewsReader::new(store);
        reader.get_latest_news();
        reader.store().settle();
        let refreshes = reader.display.lock().clone();
        assert_eq!(refreshes.len(), 3);
        assert_eq!(refreshes[0].level, ConsistencyLevel::CACHE);
        assert_eq!(refreshes[1].level, ConsistencyLevel::CAUSAL);
        assert_eq!(refreshes[2].level, ConsistencyLevel::STRONG);
    }

    #[test]
    fn fresh_publication_reaches_the_final_view_first() {
        let store = SimCausal::ec2("VRG", "IRL", 32);
        store.seed(LATEST, 1, vec![1]);
        // Breaking news published at the primary moments ago.
        store.publish(LATEST, vec![1, 99]);
        store.advance(SimDuration::from_millis(2));
        let reader = NewsReader::new(store);
        reader.get_latest_news();
        reader.store().settle();
        let refreshes = reader.display.lock().clone();
        // Cache still shows the old items; the strong view has the scoop.
        assert_eq!(refreshes[0].items, vec![1]);
        assert_eq!(refreshes.last().unwrap().items, vec![1, 99]);
    }
}
