//! The ad-serving system (§4.2, Listing 4; evaluated in §6.3.1).
//!
//! `fetch_ads_by_user_id` reads the user's personalized ad references and
//! then fetches the referenced ads. With ICG, the reference list's
//! preliminary view triggers a *speculative prefetch* of the ads; when the
//! final view confirms the references (the overwhelmingly common case),
//! the already-prefetched ads are delivered immediately — hiding the
//! latency of the strongly consistent reference read.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use correctables::{Client, Correctable};
use quorumstore::{QuorumBinding, SimStore, StoreOp, Versioned};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dataset::{ad_key, profile_key, AdsDataset};

/// Counts speculation outcomes across operations.
#[derive(Debug, Default)]
pub struct SpecCounters {
    /// ICG reads whose preliminary and final reference lists matched.
    pub confirmed: AtomicU64,
    /// ICG reads that diverged (speculation redone on the final view).
    pub diverged: AtomicU64,
}

impl SpecCounters {
    /// Fraction of ICG reads that diverged.
    pub fn divergence(&self) -> f64 {
        let c = self.confirmed.load(Ordering::Relaxed);
        let d = self.diverged.load(Ordering::Relaxed);
        if c + d == 0 {
            0.0
        } else {
            d as f64 / (c + d) as f64
        }
    }
}

/// The ad-serving application over a Correctables client.
pub struct AdSystem {
    store: SimStore,
    client: Arc<Client<QuorumBinding>>,
    dataset: AdsDataset,
    counters: Arc<SpecCounters>,
}

impl AdSystem {
    /// Builds the application over a simulated store and preloads the
    /// dataset.
    pub fn new(store: SimStore, dataset: AdsDataset, seed: u64) -> Self {
        store.preload(dataset.records(seed));
        let client = Arc::new(Client::new(store.binding()));
        AdSystem {
            store,
            client,
            dataset,
            counters: Arc::new(SpecCounters::default()),
        }
    }

    /// Speculation outcome counters.
    pub fn counters(&self) -> &SpecCounters {
        &self.counters
    }

    /// The underlying store (for `settle`, clock, bandwidth).
    pub fn store(&self) -> &SimStore {
        &self.store
    }

    /// The dataset parameters.
    pub fn dataset(&self) -> &AdsDataset {
        &self.dataset
    }

    /// Listing 4: fetch the ads personalized for `uid`.
    ///
    /// With `icg`, the reference read uses `invoke` and the ad fetch runs
    /// speculatively on the preliminary references; otherwise the
    /// reference read is a plain strong read and the fetch starts only
    /// after it completes (the paper's baseline).
    pub fn fetch_ads_by_user_id(&self, uid: u64, icg: bool) -> Correctable<Vec<Versioned>> {
        let refs = if icg {
            self.client.invoke(StoreOp::Read(profile_key(uid)))
        } else {
            self.client.invoke_strong(StoreOp::Read(profile_key(uid)))
        };
        if icg {
            // Track how often the preliminary reference list is confirmed
            // by the final one (the paper reports <1% divergence).
            let counters = Arc::clone(&self.counters);
            let prelim = Arc::new(parking_lot::Mutex::new(None::<Versioned>));
            let p2 = Arc::clone(&prelim);
            refs.on_update(move |v| {
                *p2.lock() = Some(v.value.clone());
            });
            refs.on_final(move |v| match prelim.lock().as_ref() {
                Some(p) if *p == v.value => {
                    counters.confirmed.fetch_add(1, Ordering::Relaxed);
                }
                Some(_) => {
                    counters.diverged.fetch_add(1, Ordering::Relaxed);
                }
                None => {}
            });
        }
        let client = Arc::clone(&self.client);
        refs.speculate_async(
            move |profile: &Versioned| {
                // `getAds`: fetch every referenced ad (R = 2 reads), then
                // post-process; modelled as a join over parallel reads.
                let ids = profile.value.ids().unwrap_or(&[]).to_vec();
                let fetches: Vec<Correctable<Versioned>> = ids
                    .iter()
                    .map(|id| {
                        client
                            .invoke_strong(StoreOp::Read(ad_key(*id)))
                            .map(|v| v.clone())
                    })
                    .collect();
                Correctable::join_all(fetches)
            },
            |_| {},
        )
    }

    /// Reassigns a user's personalized ad references (the update half of
    /// the YCSB-style workload).
    pub fn update_profile(&self, uid: u64, rng: &mut SmallRng) -> Correctable<Versioned> {
        let refs = self.dataset.draw_refs(rng);
        self.client.invoke_strong(StoreOp::Write(
            profile_key(uid),
            quorumstore::Value::Ids(refs),
        ))
    }

    /// A deterministic RNG for workload generation.
    pub fn workload_rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctables::State;
    use quorumstore::ReplicaConfig;

    fn system() -> AdSystem {
        let store = SimStore::ec2(ReplicaConfig::default(), 2, false, "IRL", 0, 21);
        AdSystem::new(store, AdsDataset::small(), 42)
    }

    #[test]
    fn fetch_returns_all_referenced_ads() {
        let sys = system();
        let c = sys.fetch_ads_by_user_id(3, true);
        sys.store().settle();
        assert_eq!(c.state(), State::Final);
        let ads = c.final_view().unwrap().value;
        assert!(!ads.is_empty());
        assert!(ads.len() <= 40);
        // Every fetched ad is a real ad object.
        for ad in &ads {
            assert_eq!(ad.value, quorumstore::Value::Opaque(200));
        }
    }

    #[test]
    fn icg_fetch_is_faster_than_baseline() {
        // Two identical systems; one speculates, one does not.
        let icg_sys = system();
        let base_sys = system();
        let c1 = icg_sys.fetch_ads_by_user_id(7, true);
        icg_sys.store().settle();
        let t_icg = icg_sys.store().now_ms();
        let c2 = base_sys.fetch_ads_by_user_id(7, false);
        base_sys.store().settle();
        let t_base = base_sys.store().now_ms();
        assert_eq!(
            c1.final_view().unwrap().value.len(),
            c2.final_view().unwrap().value.len()
        );
        // Speculation hides the reference read's quorum latency: the ICG
        // run finishes a full FRK–IRL RTT earlier (~60 vs ~80 ms).
        assert!(
            t_icg + 10.0 < t_base,
            "icg {t_icg}ms vs baseline {t_base}ms"
        );
    }

    #[test]
    fn update_then_fetch_sees_new_refs() {
        let sys = system();
        let mut rng = AdSystem::workload_rng(5);
        let w = sys.update_profile(9, &mut rng);
        sys.store().settle();
        assert_eq!(w.state(), State::Final);
        let c = sys.fetch_ads_by_user_id(9, true);
        sys.store().settle();
        assert_eq!(c.state(), State::Final);
    }
}
