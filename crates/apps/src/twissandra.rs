//! The Twissandra-style microblogging service (§6.3.1).
//!
//! The paper instruments Twissandra's central `get_timeline` operation:
//! (1) fetch the timeline (tweet ids), then (2) fetch each tweet by id.
//! With ICG the preliminary timeline view speculatively prefetches the
//! tweets; the final view confirms (or redoes) the prefetch.

use std::sync::Arc;

use correctables::{Client, Correctable};
use quorumstore::{QuorumBinding, SimStore, StoreOp, Value, Versioned};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::dataset::{timeline_key, tweet_key, TwissandraDataset};

/// The microblogging application over a Correctables client.
pub struct Twissandra {
    store: SimStore,
    client: Arc<Client<QuorumBinding>>,
    dataset: TwissandraDataset,
    next_tweet_id: std::sync::atomic::AtomicU64,
}

impl Twissandra {
    /// Builds the application over a simulated store and preloads the
    /// corpus.
    pub fn new(store: SimStore, dataset: TwissandraDataset, seed: u64) -> Self {
        store.preload(dataset.records(seed));
        let client = Arc::new(Client::new(store.binding()));
        let next = dataset.tweets;
        Twissandra {
            store,
            client,
            dataset,
            next_tweet_id: std::sync::atomic::AtomicU64::new(next),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &SimStore {
        &self.store
    }

    /// The dataset parameters.
    pub fn dataset(&self) -> &TwissandraDataset {
        &self.dataset
    }

    /// `get_timeline`: the two-step timeline read, optionally speculating
    /// on the preliminary timeline view (§6.3.1).
    pub fn get_timeline(&self, uid: u64, icg: bool) -> Correctable<Vec<Versioned>> {
        let timeline = if icg {
            self.client.invoke(StoreOp::Read(timeline_key(uid)))
        } else {
            self.client.invoke_strong(StoreOp::Read(timeline_key(uid)))
        };
        let client = Arc::clone(&self.client);
        timeline.speculate_async(
            move |tl: &Versioned| {
                // Prefetch the most recent tweets on the timeline (the UI
                // page: up to 20).
                let ids = tl.value.ids().unwrap_or(&[]);
                let page: Vec<u64> = ids.iter().rev().take(20).copied().collect();
                let fetches: Vec<Correctable<Versioned>> = page
                    .iter()
                    .map(|id| {
                        client
                            .invoke_strong(StoreOp::Read(tweet_key(*id)))
                            .map(|v| v.clone())
                    })
                    .collect();
                Correctable::join_all(fetches)
            },
            |_| {},
        )
    }

    /// Posts a tweet: write the tweet body, then append it to the author's
    /// timeline (read-modify-write on the id list).
    pub fn post_tweet(&self, uid: u64, rng: &mut SmallRng) -> Correctable<Versioned> {
        let tweet_id = self
            .next_tweet_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let body_len = self.dataset.tweet_bytes;
        let _ = rng.gen::<u64>();
        let client = Arc::clone(&self.client);
        let tl_key = timeline_key(uid);
        let write_body = self
            .client
            .invoke_strong(StoreOp::Write(tweet_key(tweet_id), Value::Opaque(body_len)));
        // After the body is durable, read-modify-write the timeline.
        write_body.then(move |_| {
            let client2 = Arc::clone(&client);
            client2
                .invoke_strong(StoreOp::Read(tl_key))
                .then(move |tl| {
                    let mut ids = tl.value.value.ids().map(|i| i.to_vec()).unwrap_or_default();
                    ids.push(tweet_id);
                    client.invoke_strong(StoreOp::Write(tl_key, Value::Ids(ids)))
                })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctables::State;
    use quorumstore::ReplicaConfig;
    use rand::SeedableRng;
    use simnet::Topology;

    fn app() -> Twissandra {
        // The paper's Twissandra deployment: replicas in VRG/NCAL/ORE,
        // client in IRL, coordinator VRG.
        let store = SimStore::custom(
            Topology::ec2_us_wide(),
            &["VRG", "NCAL", "ORE"],
            ReplicaConfig::default(),
            2,
            false,
            "IRL",
            0,
            77,
        );
        Twissandra::new(store, TwissandraDataset::small(), 3)
    }

    #[test]
    fn get_timeline_fetches_page_of_tweets() {
        let a = app();
        let c = a.get_timeline(5, true);
        a.store().settle();
        assert_eq!(c.state(), State::Final);
        let tweets = c.final_view().unwrap().value;
        assert!(tweets.len() <= 20);
        for t in &tweets {
            assert_eq!(t.value, Value::Opaque(140));
        }
    }

    #[test]
    fn post_then_read_timeline_contains_tweet() {
        let a = app();
        let mut rng = SmallRng::seed_from_u64(8);
        let post = a.post_tweet(5, &mut rng);
        a.store().settle();
        assert_eq!(post.state(), State::Final);
        // The timeline now ends with the fresh tweet id.
        let read = a.store().binding();
        let client = Client::new(read);
        let c = client.invoke_strong(StoreOp::Read(timeline_key(5)));
        a.store().settle();
        let ids = c.final_view().unwrap().value.value.ids().unwrap().to_vec();
        assert_eq!(*ids.last().unwrap(), a.dataset().tweets);
    }

    #[test]
    fn icg_timeline_read_is_faster() {
        let icg = app();
        let c1 = icg.get_timeline(2, true);
        icg.store().settle();
        let t_icg = icg.store().now_ms();
        let base = app();
        let c2 = base.get_timeline(2, false);
        base.store().settle();
        let t_base = base.store().now_ms();
        assert_eq!(c1.state(), State::Final);
        assert_eq!(c2.state(), State::Final);
        assert!(t_icg < t_base, "icg {t_icg} vs base {t_base}");
    }
}
