//! A closed-loop load driver running *application code* through the
//! Correctables API inside the simulation.
//!
//! Each virtual user keeps one application-level operation outstanding:
//! when the Correctable returned by the operation factory closes, the
//! completion is recorded and the next operation is issued — from inside
//! the callback, at the correct virtual instant. The whole load loop
//! therefore exercises exactly the code path a real application would:
//! `invoke → speculate → callbacks`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use correctables::Correctable;
use simnet::{Histogram, SimDuration};

/// Measurement results of one load run.
#[derive(Clone, Debug, Default)]
pub struct LoadStats {
    /// Latency of operations completing inside the window.
    pub latency: Histogram,
    /// Operations completed inside the window.
    pub completed: u64,
    /// Operations that failed.
    pub failed: u64,
    /// Total operations completed (any time).
    pub total: u64,
}

impl LoadStats {
    /// Throughput over the measurement window.
    pub fn throughput(&self, window: SimDuration) -> f64 {
        self.completed as f64 / window.as_secs_f64()
    }
}

struct DriverState {
    clock: Arc<AtomicU64>,
    window_from_ns: u64,
    window_until_ns: u64,
    end_ns: u64,
    stats: Mutex<LoadStats>,
    seq: AtomicU64,
    factory: Box<dyn Fn(u64) -> MeasuredOp + Send + Sync>,
}

/// One issued operation plus whether its latency should be recorded
/// (e.g. the paper's Figure 11 reports the latency of serving ads, while
/// profile updates only contribute load).
pub struct MeasuredOp {
    /// The operation's Correctable (unit-mapped).
    pub op: Correctable<()>,
    /// Whether to record this operation's latency.
    pub measured: bool,
}

impl MeasuredOp {
    /// A measured operation.
    pub fn measured(op: Correctable<()>) -> Self {
        MeasuredOp { op, measured: true }
    }

    /// A background (load-only) operation.
    pub fn background(op: Correctable<()>) -> Self {
        MeasuredOp {
            op,
            measured: false,
        }
    }
}

/// A closed-loop driver over an operation factory.
pub struct LoadDriver {
    state: Arc<DriverState>,
}

impl LoadDriver {
    /// Creates a driver. `clock` mirrors virtual time (from
    /// `SimStore::clock`); `factory(seq)` issues one application
    /// operation; measurements are taken in `[window_from, window_until)`
    /// and no new operations start after `end`.
    pub fn new(
        clock: Arc<AtomicU64>,
        window_from: SimDuration,
        window_until: SimDuration,
        end: SimDuration,
        factory: impl Fn(u64) -> MeasuredOp + Send + Sync + 'static,
    ) -> Self {
        LoadDriver {
            state: Arc::new(DriverState {
                clock,
                window_from_ns: window_from.as_nanos(),
                window_until_ns: window_until.as_nanos(),
                end_ns: end.as_nanos(),
                stats: Mutex::new(LoadStats::default()),
                seq: AtomicU64::new(0),
                factory: Box::new(factory),
            }),
        }
    }

    /// Starts `threads` concurrent virtual users. Call `settle()` on the
    /// underlying store afterwards to run them to completion.
    pub fn start(&self, threads: u32) {
        for _ in 0..threads {
            Self::issue(&self.state);
        }
    }

    fn issue(state: &Arc<DriverState>) {
        let now = state.clock.load(Ordering::Relaxed);
        if now >= state.end_ns {
            return;
        }
        let seq = state.seq.fetch_add(1, Ordering::Relaxed);
        let MeasuredOp { op, measured } = (state.factory)(seq);
        let st_ok = Arc::clone(state);
        let start = now;
        op.on_final(move |_| {
            let end = st_ok.clock.load(Ordering::Relaxed);
            {
                let mut stats = st_ok.stats.lock();
                stats.total += 1;
                if end >= st_ok.window_from_ns && end < st_ok.window_until_ns {
                    stats.completed += 1;
                    if measured {
                        stats
                            .latency
                            .record(SimDuration::from_nanos(end.saturating_sub(start)));
                    }
                }
            }
            Self::issue(&st_ok);
        });
        let st_err = Arc::clone(state);
        op.on_error(move |_| {
            st_err.stats.lock().failed += 1;
            Self::issue(&st_err);
        });
    }

    /// The collected statistics (call after the simulation settles).
    pub fn stats(&self) -> LoadStats {
        self.state.stats.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctables::Client;
    use quorumstore::{Key, ReplicaConfig, SimStore, StoreOp, Value};

    #[test]
    fn closed_loop_driver_runs_until_end_and_measures_window() {
        let store = SimStore::ec2(ReplicaConfig::default(), 2, false, "IRL", 0, 5);
        store.preload((0..16).map(|i| (Key::plain(i), Value::Opaque(100))));
        let client = Arc::new(Client::new(store.binding()));
        let driver = LoadDriver::new(
            store.clock(),
            SimDuration::from_millis(200),
            SimDuration::from_millis(1200),
            SimDuration::from_millis(1500),
            move |seq| {
                MeasuredOp::measured(
                    client
                        .invoke_strong(StoreOp::Read(Key::plain(seq % 16)))
                        .map(|_| ()),
                )
            },
        );
        driver.start(2);
        store.settle();
        let stats = driver.stats();
        // A strong read takes ~40 ms; 2 threads over a 1 s window ≈ 50 ops.
        assert!(stats.completed > 30, "completed {}", stats.completed);
        assert!(stats.completed < 80, "completed {}", stats.completed);
        assert!(stats.total >= stats.completed);
        let mut lat = stats.latency.clone();
        let mean = lat.summary().mean.as_millis_f64();
        assert!((35.0..55.0).contains(&mean), "mean {mean}");
    }
}
