//! Synthetic datasets matching the paper's case-study scales (§6.3).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use quorumstore::{Key, Value};

/// Namespace of ad-system user profiles.
pub const PROFILE_NS: u8 = 1;
/// Namespace of ad objects.
pub const AD_NS: u8 = 2;
/// Namespace of Twissandra timelines.
pub const TIMELINE_NS: u8 = 3;
/// Namespace of Twissandra tweets.
pub const TWEET_NS: u8 = 4;

/// Key of a user profile.
pub fn profile_key(uid: u64) -> Key {
    Key {
        ns: PROFILE_NS,
        id: uid,
    }
}

/// Key of an ad object.
pub fn ad_key(id: u64) -> Key {
    Key { ns: AD_NS, id }
}

/// Key of a user timeline.
pub fn timeline_key(uid: u64) -> Key {
    Key {
        ns: TIMELINE_NS,
        id: uid,
    }
}

/// Key of a tweet.
pub fn tweet_key(id: u64) -> Key {
    Key { ns: TWEET_NS, id }
}

/// The ad-serving dataset (§6.3.1): `profiles` user profiles referencing
/// between 1 and 40 random ads out of `ads` ad objects of `ad_bytes` each.
pub struct AdsDataset {
    /// Number of user profiles.
    pub profiles: u64,
    /// Number of distinct ads.
    pub ads: u64,
    /// Size of each ad object.
    pub ad_bytes: u32,
}

impl AdsDataset {
    /// The paper's scale: 100 k profiles, 230 k ads.
    pub fn paper() -> Self {
        AdsDataset {
            profiles: 100_000,
            ads: 230_000,
            ad_bytes: 200,
        }
    }

    /// A miniature variant for tests.
    pub fn small() -> Self {
        AdsDataset {
            profiles: 200,
            ads: 500,
            ad_bytes: 200,
        }
    }

    /// Draws a random reference list for one profile (1..=40 ads).
    pub fn draw_refs(&self, rng: &mut SmallRng) -> Vec<u64> {
        let n = rng.gen_range(1..=40usize);
        (0..n).map(|_| rng.gen_range(0..self.ads)).collect()
    }

    /// All records to preload, deterministically from `seed`.
    pub fn records(&self, seed: u64) -> Vec<(Key, Value)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity((self.profiles + self.ads) as usize);
        for uid in 0..self.profiles {
            out.push((profile_key(uid), Value::Ids(self.draw_refs(&mut rng))));
        }
        for ad in 0..self.ads {
            out.push((ad_key(ad), Value::Opaque(self.ad_bytes)));
        }
        out
    }
}

/// The Twissandra dataset (§6.3.1): a 65 k-tweet corpus spread over 22 k
/// user timelines.
pub struct TwissandraDataset {
    /// Number of user timelines.
    pub timelines: u64,
    /// Number of tweets.
    pub tweets: u64,
    /// Size of one tweet body.
    pub tweet_bytes: u32,
}

impl TwissandraDataset {
    /// The paper's scale: 65 k tweets over 22 k timelines.
    pub fn paper() -> Self {
        TwissandraDataset {
            timelines: 22_000,
            tweets: 65_000,
            tweet_bytes: 140,
        }
    }

    /// A miniature variant for tests.
    pub fn small() -> Self {
        TwissandraDataset {
            timelines: 100,
            tweets: 300,
            tweet_bytes: 140,
        }
    }

    /// All records to preload: tweets assigned round-robin to timelines.
    pub fn records(&self, seed: u64) -> Vec<(Key, Value)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut timelines: Vec<Vec<u64>> = vec![Vec::new(); self.timelines as usize];
        for tweet in 0..self.tweets {
            let owner = rng.gen_range(0..self.timelines) as usize;
            timelines[owner].push(tweet);
        }
        let mut out = Vec::with_capacity((self.timelines + self.tweets) as usize);
        for (uid, ids) in timelines.into_iter().enumerate() {
            out.push((timeline_key(uid as u64), Value::Ids(ids)));
        }
        for tweet in 0..self.tweets {
            out.push((tweet_key(tweet), Value::Opaque(self.tweet_bytes)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ads_refs_are_in_range_and_bounded() {
        let d = AdsDataset::small();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let refs = d.draw_refs(&mut rng);
            assert!((1..=40).contains(&refs.len()));
            assert!(refs.iter().all(|r| *r < d.ads));
        }
    }

    #[test]
    fn ads_records_cover_profiles_and_ads() {
        let d = AdsDataset::small();
        let recs = d.records(7);
        assert_eq!(recs.len() as u64, d.profiles + d.ads);
        assert!(recs.iter().any(|(k, _)| k.ns == PROFILE_NS));
        assert!(recs.iter().any(|(k, _)| k.ns == AD_NS));
    }

    #[test]
    fn twissandra_assigns_every_tweet_once() {
        let d = TwissandraDataset::small();
        let recs = d.records(3);
        let total_refs: usize = recs
            .iter()
            .filter(|(k, _)| k.ns == TIMELINE_NS)
            .map(|(_, v)| v.ids().map(|i| i.len()).unwrap_or(0))
            .sum();
        assert_eq!(total_refs as u64, d.tweets);
    }

    #[test]
    fn datasets_are_deterministic() {
        let d = AdsDataset::small();
        assert_eq!(d.records(9), d.records(9));
    }
}
