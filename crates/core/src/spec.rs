//! Pluggable sequential specifications: the deterministic state machines
//! that both the spec-driven bindings and the oracle's linearizability
//! checker replay.
//!
//! A [`SeqSpec`] is a deterministic state machine. The update-consistency
//! and causal bindings replay one through [`SeqSpec::apply`] to turn a
//! totally-ordered (or causally-ordered) update log into views; the
//! oracle's checker searches for an order of the observed operations in
//! which the same replay reproduces every observed return value.
//! Specs model exactly what the bindings promise — a last-value
//! register map (quorum store), a counter map (the in-memory shard
//! backend), a sequenced FIFO queue (the ZooKeeper-model queue), and a
//! revisioned key-value store (the causal store's primary).

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// A sequential specification: deterministic `apply` over a hashable
/// state (hashability feeds the checker's memoization).
pub trait SeqSpec {
    /// Operation type.
    type Op: Clone + Debug;
    /// Return type; compared against observed returns.
    type Ret: Clone + PartialEq + Debug;
    /// State type.
    type State: Clone + Eq + Hash;

    /// The initial state (preloaded / seeded data).
    fn initial(&self) -> Self::State;

    /// Applies `op` to `state`, yielding the next state and the return
    /// value a sequential execution would observe.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret);
}

/// Operations of the register-map specs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegOp {
    /// Read key.
    Read(u64),
    /// Write key := value.
    Write(u64, u64),
}

/// A map of last-value registers over `u64` keys: the sequential model
/// of the quorum store (reads return the most recently written value;
/// unknown keys read 0 — the "absent" record).
#[derive(Clone, Debug, Default)]
pub struct RegisterSpec {
    /// Preloaded key → value pairs.
    pub initial: BTreeMap<u64, u64>,
}

impl SeqSpec for RegisterSpec {
    type Op = RegOp;
    type Ret = u64;
    type State = BTreeMap<u64, u64>;

    fn initial(&self) -> Self::State {
        self.initial.clone()
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        match op {
            RegOp::Read(k) => (state.clone(), state.get(k).copied().unwrap_or(0)),
            RegOp::Write(k, v) => {
                let mut s = state.clone();
                s.insert(*k, *v);
                (s, *v)
            }
        }
    }
}

/// Operations of the counter-map spec (mirrors `icg_shard::KvOp`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrOp {
    /// Read a counter (absent counters read 0).
    Get(u64),
    /// Overwrite a counter, returning the written value.
    Put(u64, u64),
    /// Increment a counter, returning the new value.
    Add(u64, u64),
}

/// A map of counters: the sequential model of the in-memory shard
/// backend.
#[derive(Clone, Debug, Default)]
pub struct CounterSpec;

impl SeqSpec for CounterSpec {
    type Op = CtrOp;
    type Ret = u64;
    type State = BTreeMap<u64, u64>;

    fn initial(&self) -> Self::State {
        BTreeMap::new()
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        match op {
            CtrOp::Get(k) => (state.clone(), state.get(k).copied().unwrap_or(0)),
            CtrOp::Put(k, v) => {
                let mut s = state.clone();
                s.insert(*k, *v);
                (s, *v)
            }
            CtrOp::Add(k, d) => {
                let mut s = state.clone();
                let e = s.entry(*k).or_insert(0);
                *e = e.wrapping_add(*d);
                let v = *e;
                (s, v)
            }
        }
    }
}

/// Operations of the queue spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QOp {
    /// Append an element; returns its sequence number.
    Enqueue,
    /// Remove the head element.
    Dequeue,
}

/// Return value of a queue operation: the element's sequence number (as
/// parsed from its `qn-…` name) and the binding's `remaining` field —
/// queue position for enqueues, length after the pop for dequeues.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QRet {
    /// The element's sequence number (`None`: dequeue of an empty queue).
    pub name: Option<u64>,
    /// The `remaining` companion value the binding reports.
    pub remaining: u64,
}

/// Queue state: the creation counter plus the live elements in order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueueState {
    /// Next sequential-creation number.
    pub next_seq: u64,
    /// Elements present, head first.
    pub items: VecDeque<u64>,
}

/// The sequenced FIFO queue of the ZooKeeper-model binding: sequential
/// creation numbers, pops in element order.
#[derive(Clone, Debug, Default)]
pub struct QueueSpec {
    /// Number of prefilled elements (sequence numbers `0..prefill`).
    pub prefill: u64,
}

impl SeqSpec for QueueSpec {
    type Op = QOp;
    type Ret = QRet;
    type State = QueueState;

    fn initial(&self) -> Self::State {
        QueueState {
            next_seq: self.prefill,
            items: (0..self.prefill).collect(),
        }
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        let mut s = state.clone();
        match op {
            QOp::Enqueue => {
                let seq = s.next_seq;
                s.next_seq += 1;
                s.items.push_back(seq);
                (
                    s,
                    QRet {
                        name: Some(seq),
                        remaining: seq,
                    },
                )
            }
            QOp::Dequeue => {
                let name = s.items.pop_front();
                let remaining = s.items.len() as u64;
                (s, QRet { name, remaining })
            }
        }
    }
}

/// Operations of the revisioned key-value spec (the causal store).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvsOp {
    /// Read a key.
    Get(String),
    /// Write a key; the primary assigns revision `current + 1`.
    Put(String, Vec<u64>),
}

/// The causal store's primary as a sequential object: writes bump a
/// per-key revision, reads return `(rev, items)`.
#[derive(Clone, Debug, Default)]
pub struct KvStoreSpec {
    /// Seeded key → (revision, items).
    pub initial: BTreeMap<String, (u64, Vec<u64>)>,
}

impl SeqSpec for KvStoreSpec {
    type Op = KvsOp;
    type Ret = Option<(u64, Vec<u64>)>;
    type State = BTreeMap<String, (u64, Vec<u64>)>;

    fn initial(&self) -> Self::State {
        self.initial.clone()
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        match op {
            KvsOp::Get(k) => (state.clone(), state.get(k).cloned()),
            KvsOp::Put(k, items) => {
                let rev = state.get(k).map(|(r, _)| r + 1).unwrap_or(1);
                let mut s = state.clone();
                s.insert(k.clone(), (rev, items.clone()));
                (s, Some((rev, items.clone())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_reads_follow_writes() {
        let spec = RegisterSpec {
            initial: BTreeMap::from([(1, 10)]),
        };
        let s0 = spec.initial();
        assert_eq!(spec.apply(&s0, &RegOp::Read(1)).1, 10);
        assert_eq!(spec.apply(&s0, &RegOp::Read(9)).1, 0);
        let (s1, r) = spec.apply(&s0, &RegOp::Write(1, 42));
        assert_eq!(r, 42);
        assert_eq!(spec.apply(&s1, &RegOp::Read(1)).1, 42);
    }

    #[test]
    fn queue_matches_binding_semantics() {
        let spec = QueueSpec { prefill: 2 };
        let s0 = spec.initial();
        // Enqueue reports its sequence number as both name and position.
        let (s1, r) = spec.apply(&s0, &QOp::Enqueue);
        assert_eq!(
            r,
            QRet {
                name: Some(2),
                remaining: 2
            }
        );
        // Dequeues pop in order and report the length after the pop.
        let (s2, r) = spec.apply(&s1, &QOp::Dequeue);
        assert_eq!(
            r,
            QRet {
                name: Some(0),
                remaining: 2
            }
        );
        let (s3, _) = spec.apply(&s2, &QOp::Dequeue);
        let (s4, _) = spec.apply(&s3, &QOp::Dequeue);
        let (_, r) = spec.apply(&s4, &QOp::Dequeue);
        assert_eq!(
            r,
            QRet {
                name: None,
                remaining: 0
            }
        );
    }

    #[test]
    fn kv_store_bumps_revisions() {
        let spec = KvStoreSpec {
            initial: BTreeMap::from([("k".to_string(), (1, vec![7]))]),
        };
        let s0 = spec.initial();
        let (s1, r) = spec.apply(&s0, &KvsOp::Put("k".into(), vec![8]));
        assert_eq!(r, Some((2, vec![8])));
        assert_eq!(
            spec.apply(&s1, &KvsOp::Get("k".into())).1,
            Some((2, vec![8]))
        );
        assert_eq!(spec.apply(&s1, &KvsOp::Get("new".into())).1, None);
    }

    #[test]
    fn counters_accumulate() {
        let spec = CounterSpec;
        let s0 = spec.initial();
        let (s1, _) = spec.apply(&s0, &CtrOp::Add(3, 5));
        let (s2, r) = spec.apply(&s1, &CtrOp::Add(3, 2));
        assert_eq!(r, 7);
        assert_eq!(spec.apply(&s2, &CtrOp::Get(3)).1, 7);
    }
}
