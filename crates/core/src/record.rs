//! History recording: the substrate of the consistency oracle.
//!
//! A [`History`] is a concurrent, append-only log of every invocation
//! that flowed through a [`RecordingBinding`]: the operation, the levels
//! requested, and the full client-visible view sequence (per-view level,
//! value, and timestamps) up to the close or error. The `icg-oracle`
//! crate checks recorded histories against the paper's guarantees —
//! view monotonicity, convergence of weak views, and linearizability of
//! strong views — but the recording layer itself is deliberately dumb:
//! it observes, it never interprets.
//!
//! [`RecordingBinding`] wraps any [`Binding`] transparently. It records
//! exactly the stream the client observes (after the [`Upcall`]'s
//! level-filtering and close-once arbitration), so a checker that
//! rejects a recorded history is rejecting what the application really
//! saw, not an internal delivery the library would have suppressed.
//!
//! The recording is implemented as a [`DeliveryObserver`] attached to the
//! caller's own upcall, not as an interposed Correctable: the upcall's
//! cached level filter is evaluated once, accepted views are cloned
//! exactly once (into the history), and views the filter or arbitration
//! drops are never cloned at all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::binding::{Binding, DeliveryObserver, Upcall};
use crate::correctable::Correctable;
use crate::error::Error;
use crate::level::{ConsistencyLevel, LevelSet};

/// One recorded delivery of an invocation.
#[derive(Clone, Debug)]
pub enum HistoryEvent<T> {
    /// A view was delivered to the client.
    View {
        /// Global, strictly increasing event sequence number.
        seq: u64,
        /// Virtual time in nanoseconds, if the history has a clock
        /// (0 otherwise).
        at_nanos: u64,
        /// The consistency level of the view.
        level: ConsistencyLevel,
        /// The delivered value.
        value: T,
        /// Whether this view closed the Correctable (final view).
        closing: bool,
    },
    /// The invocation closed exceptionally.
    Failed {
        /// Global event sequence number.
        seq: u64,
        /// Virtual time in nanoseconds (0 without a clock).
        at_nanos: u64,
        /// The closing error.
        error: Error,
    },
}

impl<T> HistoryEvent<T> {
    /// The event's global sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            HistoryEvent::View { seq, .. } | HistoryEvent::Failed { seq, .. } => *seq,
        }
    }

    /// Whether this event closed the invocation (final view or error).
    pub fn is_closing(&self) -> bool {
        match self {
            HistoryEvent::View { closing, .. } => *closing,
            HistoryEvent::Failed { .. } => true,
        }
    }
}

/// One invocation's complete record.
#[derive(Clone, Debug)]
pub struct Invocation<Op, T> {
    /// Index of this invocation in the history.
    pub id: usize,
    /// The operation submitted.
    pub op: Op,
    /// The levels requested, weakest-first (as passed to `submit`).
    pub levels: Vec<ConsistencyLevel>,
    /// Global sequence number drawn at submission time — the start of
    /// the invocation's interval for concurrency analysis.
    pub submitted: u64,
    /// Virtual submission time in nanoseconds (0 without a clock).
    pub at_nanos: u64,
    /// Everything delivered, in delivery order.
    pub events: Vec<HistoryEvent<T>>,
}

impl<Op, T> Invocation<Op, T> {
    /// The strongest requested level, if any level was requested.
    pub fn strongest(&self) -> Option<ConsistencyLevel> {
        self.levels.iter().max().copied()
    }

    /// The closing event, if the invocation has closed.
    pub fn closing_event(&self) -> Option<&HistoryEvent<T>> {
        self.events.iter().find(|e| e.is_closing())
    }

    /// The final view's value and level, if closed successfully.
    pub fn final_view(&self) -> Option<(&T, ConsistencyLevel)> {
        self.events.iter().find_map(|e| match e {
            HistoryEvent::View {
                closing: true,
                value,
                level,
                ..
            } => Some((value, *level)),
            _ => None,
        })
    }

    /// Sequence number of the closing event, or `u64::MAX` while open
    /// (the invocation's interval end).
    pub fn closed_at(&self) -> u64 {
        self.closing_event().map(|e| e.seq()).unwrap_or(u64::MAX)
    }
}

struct HistoryState<Op, T> {
    invocations: Vec<Invocation<Op, T>>,
    seq: u64,
}

/// A concurrent recording of invocations and their view sequences.
///
/// Cloning is cheap; all clones observe and append to the same log.
pub struct History<Op, T> {
    state: Arc<Mutex<HistoryState<Op, T>>>,
    /// Optional mirror of a simulation clock (nanoseconds), stamped onto
    /// every event (e.g. `SimStore::clock`).
    clock: Option<Arc<AtomicU64>>,
}

impl<Op, T> Clone for History<Op, T> {
    fn clone(&self) -> Self {
        History {
            state: Arc::clone(&self.state),
            clock: self.clock.clone(),
        }
    }
}

impl<Op, T> Default for History<Op, T> {
    fn default() -> Self {
        History::new()
    }
}

impl<Op, T> History<Op, T> {
    /// An empty history with no clock (events are stamped `at_nanos: 0`).
    pub fn new() -> Self {
        History {
            state: Arc::new(Mutex::new(HistoryState {
                invocations: Vec::new(),
                seq: 0,
            })),
            clock: None,
        }
    }

    /// An empty history stamping events from `clock` (virtual
    /// nanoseconds, e.g. a simulation's mirrored gateway clock).
    pub fn with_clock(clock: Arc<AtomicU64>) -> Self {
        History {
            state: Arc::new(Mutex::new(HistoryState {
                invocations: Vec::new(),
                seq: 0,
            })),
            clock: Some(clock),
        }
    }

    fn now_nanos(&self) -> u64 {
        self.clock
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Opens a new invocation record; returns its id.
    pub fn begin(&self, op: Op, levels: Vec<ConsistencyLevel>) -> usize {
        let at_nanos = self.now_nanos();
        let mut g = self.state.lock();
        let seq = g.seq;
        g.seq += 1;
        let id = g.invocations.len();
        g.invocations.push(Invocation {
            id,
            op,
            levels,
            submitted: seq,
            at_nanos,
            events: Vec::new(),
        });
        id
    }

    /// Records a view delivery for invocation `id`.
    pub fn view(&self, id: usize, level: ConsistencyLevel, value: T, closing: bool) {
        let at_nanos = self.now_nanos();
        let mut g = self.state.lock();
        let seq = g.seq;
        g.seq += 1;
        g.invocations[id].events.push(HistoryEvent::View {
            seq,
            at_nanos,
            level,
            value,
            closing,
        });
    }

    /// Records an error close for invocation `id`.
    pub fn failed(&self, id: usize, error: Error) {
        let at_nanos = self.now_nanos();
        let mut g = self.state.lock();
        let seq = g.seq;
        g.seq += 1;
        g.invocations[id].events.push(HistoryEvent::Failed {
            seq,
            at_nanos,
            error,
        });
    }

    /// The current sequence watermark: every event recorded from now on
    /// gets a sequence number `>=` the returned value. Checkers use this
    /// to scope assertions to a suffix (e.g. a quiescent tail).
    pub fn mark(&self) -> u64 {
        self.state.lock().seq
    }

    /// Number of invocations recorded so far.
    pub fn len(&self) -> usize {
        self.state.lock().invocations.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<Op: Clone, T: Clone> History<Op, T> {
    /// A point-in-time copy of every invocation record.
    pub fn snapshot(&self) -> Vec<Invocation<Op, T>> {
        self.state.lock().invocations.clone()
    }
}

impl<Op: Send + 'static, T: Clone + Send + 'static> History<Op, T> {
    /// Records an already-constructed [`Correctable`]'s view stream into
    /// this history (replaying views delivered before the call, then
    /// following live). For streams that do not come out of a binding —
    /// e.g. a scatter/gather merge — this is the recording entry point.
    ///
    /// Returns the invocation id.
    pub fn observe(&self, op: Op, levels: Vec<ConsistencyLevel>, c: &Correctable<T>) -> usize {
        let id = self.begin(op, levels);
        let h = self.clone();
        c.on_update(move |v| h.view(id, v.level, v.value.clone(), false));
        let h = self.clone();
        c.on_final(move |v| h.view(id, v.level, v.value.clone(), true));
        let h = self.clone();
        c.on_error(move |e| h.failed(id, e.clone()));
        id
    }
}

/// Records one invocation's accepted deliveries into a [`History`].
struct Recorder<Op, T> {
    history: History<Op, T>,
    id: usize,
}

impl<Op: Send, T: Send> DeliveryObserver<T> for Recorder<Op, T> {
    fn on_view(&self, value: T, level: ConsistencyLevel, closing: bool) {
        self.history.view(self.id, level, value, closing);
    }

    fn on_fail(&self, error: &Error) {
        self.history.failed(self.id, error.clone());
    }
}

/// A transparent [`Binding`] wrapper logging every invocation into a
/// [`History`].
///
/// The wrapper attaches a [`DeliveryObserver`] to the caller's [`Upcall`],
/// so it records the post-filtering, post-arbitration view stream —
/// exactly what the client sees — while the views flow to the caller
/// through the original upcall unchanged.
pub struct RecordingBinding<B: Binding> {
    inner: B,
    history: History<B::Op, B::Val>,
}

impl<B: Binding + Clone> Clone for RecordingBinding<B> {
    fn clone(&self) -> Self {
        RecordingBinding {
            inner: self.inner.clone(),
            history: self.history.clone(),
        }
    }
}

impl<B: Binding> RecordingBinding<B> {
    /// Wraps `inner`, recording into `history`.
    pub fn new(inner: B, history: History<B::Op, B::Val>) -> Self {
        RecordingBinding { inner, history }
    }

    /// The wrapped binding.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The history this binding records into.
    pub fn history(&self) -> &History<B::Op, B::Val> {
        &self.history
    }
}

impl<B> Binding for RecordingBinding<B>
where
    B: Binding,
    B::Op: Clone + Send + 'static,
{
    type Op = B::Op;
    type Val = B::Val;

    fn consistency_levels(&self) -> LevelSet {
        self.inner.consistency_levels()
    }

    fn submit(&self, op: B::Op, levels: &[ConsistencyLevel], upcall: Upcall<B::Val>) {
        let id = self.history.begin(op.clone(), levels.to_vec());
        let recorder = Arc::new(Recorder {
            history: self.history.clone(),
            id,
        });
        self.inner
            .submit(op, levels, upcall.with_observer(recorder));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::correctable::State;
    use crate::level::{ConsistencyLevel, LevelSet};
    const CAUSAL: ConsistencyLevel = ConsistencyLevel::CAUSAL;
    const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;
    const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
    /// Synchronously answers `level.rank()` at every requested level.
    #[derive(Clone)]
    struct RankBinding;

    impl Binding for RankBinding {
        type Op = u8;
        type Val = u8;

        fn consistency_levels(&self) -> LevelSet {
            LevelSet::of(&[WEAK, CAUSAL, STRONG])
        }

        fn submit(&self, _op: u8, levels: &[ConsistencyLevel], upcall: Upcall<u8>) {
            for l in levels {
                upcall.deliver(l.rank(), *l);
            }
        }
    }

    #[test]
    fn records_full_view_sequence_per_invocation() {
        let history = History::new();
        let client = Client::new(RecordingBinding::new(RankBinding, history.clone()));
        let c = client.invoke(7);
        assert_eq!(c.state(), State::Final);
        let invs = history.snapshot();
        assert_eq!(invs.len(), 1);
        let inv = &invs[0];
        assert_eq!(inv.op, 7);
        assert_eq!(inv.levels, vec![WEAK, CAUSAL, STRONG]);
        assert_eq!(inv.events.len(), 3);
        assert!(!inv.events[0].is_closing());
        assert!(!inv.events[1].is_closing());
        assert!(inv.events[2].is_closing());
        assert_eq!(inv.final_view().unwrap().1, STRONG);
        // Sequence numbers strictly ascend and start after the submission.
        assert!(inv.submitted < inv.events[0].seq());
        assert!(inv.events.windows(2).all(|w| w[0].seq() < w[1].seq()));
    }

    #[test]
    fn forwards_views_to_the_client_unchanged() {
        let history = History::new();
        let client = Client::new(RecordingBinding::new(RankBinding, history.clone()));
        let c = client.invoke(1);
        let prelims = c.preliminary_views();
        assert_eq!(prelims.len(), 2);
        assert_eq!(prelims[0].level, WEAK);
        assert_eq!(prelims[1].level, CAUSAL);
        assert_eq!(c.final_view().unwrap().level, STRONG);
        assert_eq!(c.final_view().unwrap().value, STRONG.rank());
    }

    #[test]
    fn records_the_filtered_stream_not_the_raw_one() {
        use crate::level::LevelSelection;
        let history = History::new();
        let client = Client::new(RecordingBinding::new(RankBinding, history.clone()));
        let _c = client.invoke_with(3, &LevelSelection::only(&[WEAK, STRONG]));
        let invs = history.snapshot();
        // CAUSAL was delivered by the binding but never requested: the
        // recorded stream must not contain it.
        assert_eq!(invs[0].events.len(), 2);
        assert_eq!(invs[0].levels, vec![WEAK, STRONG]);
    }

    #[test]
    fn records_errors() {
        #[derive(Clone)]
        struct FailBinding;
        impl Binding for FailBinding {
            type Op = ();
            type Val = u8;
            fn consistency_levels(&self) -> LevelSet {
                LevelSet::of(&[WEAK, STRONG])
            }
            fn submit(&self, _op: (), _levels: &[ConsistencyLevel], upcall: Upcall<u8>) {
                upcall.deliver(1, WEAK);
                upcall.fail(Error::Timeout);
            }
        }
        let history = History::new();
        let client = Client::new(RecordingBinding::new(FailBinding, history.clone()));
        let c = client.invoke(());
        assert_eq!(c.state(), State::Error);
        let invs = history.snapshot();
        assert_eq!(invs[0].events.len(), 2);
        assert!(matches!(
            invs[0].events[1],
            HistoryEvent::Failed {
                error: Error::Timeout,
                ..
            }
        ));
        assert_eq!(invs[0].closed_at(), invs[0].events[1].seq());
    }

    #[test]
    fn observe_replays_and_follows_a_correctable() {
        let history: History<&str, u8> = History::new();
        let (c, h) = Correctable::pending();
        h.update(1, WEAK).unwrap();
        history.observe("gathered", vec![WEAK, STRONG], &c);
        h.close(2, STRONG).unwrap();
        let invs = history.snapshot();
        assert_eq!(invs[0].events.len(), 2);
        assert_eq!(invs[0].op, "gathered");
        assert!(invs[0].events[1].is_closing());
    }

    #[test]
    fn mark_scopes_a_suffix() {
        let history = History::new();
        let client = Client::new(RecordingBinding::new(RankBinding, history.clone()));
        client.invoke(1);
        let mark = history.mark();
        client.invoke(2);
        let tail: Vec<_> = history
            .snapshot()
            .into_iter()
            .filter(|i| i.submitted >= mark)
            .collect();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].op, 2);
    }
}
