//! The `Correctable` abstraction itself: a multi-view generalization of
//! Promises (Figure 3 of the paper).
//!
//! A `Correctable` starts in the **updating** state. Each preliminary view
//! triggers an *updating → updating* transition and the `on_update`
//! callbacks; the final view closes it (*updating → final*, `on_final`);
//! an error closes it exceptionally (*updating → error*, `on_error`).
//! Once closed, the state never changes again.
//!
//! The consumer side is [`Correctable`]; the producer side (the library /
//! binding) drives it through a [`Handle`]. Both are cheaply cloneable and
//! thread-safe; callbacks never run while internal locks are held, so they
//! may freely create, update, or wait on other Correctables.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{ClosedError, Error};
use crate::level::ConsistencyLevel;
use crate::view::View;

/// Observable state of a [`Correctable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum State {
    /// Still expecting stronger views.
    Updating,
    /// Closed with a final (strongest requested) view.
    Final,
    /// Closed with an error.
    Error,
}

type UpdateFn<T> = Box<dyn FnMut(&View<T>) + Send>;
type FinalFn<T> = Box<dyn FnOnce(&View<T>) + Send>;
type ErrorFn = Box<dyn FnOnce(&Error) + Send>;

struct UpdateEntry<T> {
    /// Taken out while the callback runs so re-entrant dispatch skips it.
    f: Option<UpdateFn<T>>,
    /// Number of preliminary views already delivered to this callback.
    seen: usize,
}

struct Shared<T> {
    state: State,
    /// Preliminary views, in delivery order.
    updates: Vec<View<T>>,
    /// The closing view, if `state == Final`.
    final_view: Option<View<T>>,
    /// The closing error, if `state == Error`.
    error: Option<Error>,
    update_cbs: Vec<UpdateEntry<T>>,
    final_cbs: Vec<FinalFn<T>>,
    error_cbs: Vec<ErrorFn>,
}

struct Inner<T> {
    shared: Mutex<Shared<T>>,
    cond: Condvar,
}

/// Consumer handle to an operation with incremental consistency guarantees.
///
/// Cloning is cheap and observes the same underlying operation.
pub struct Correctable<T> {
    inner: Arc<Inner<T>>,
}

/// Producer handle used by the library and bindings to deliver views.
///
/// Cloning is cheap; all clones drive the same `Correctable`, and the
/// state machine guarantees at most one closing transition overall.
pub struct Handle<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Correctable<T> {
    fn clone(&self) -> Self {
        Correctable {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        Handle {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone + Send + 'static> Correctable<T> {
    /// Creates an open Correctable and its producer handle.
    pub fn pending() -> (Correctable<T>, Handle<T>) {
        let inner = Arc::new(Inner {
            shared: Mutex::new(Shared {
                state: State::Updating,
                updates: Vec::new(),
                final_view: None,
                error: None,
                update_cbs: Vec::new(),
                final_cbs: Vec::new(),
                error_cbs: Vec::new(),
            }),
            cond: Condvar::new(),
        });
        (
            Correctable {
                inner: Arc::clone(&inner),
            },
            Handle { inner },
        )
    }

    /// A Correctable that is already final with `value` at [`ConsistencyLevel::Strong`].
    pub fn ready(value: T) -> Correctable<T> {
        Correctable::ready_at(value, ConsistencyLevel::Strong)
    }

    /// A Correctable that is already final with `value` at `level`.
    pub fn ready_at(value: T, level: ConsistencyLevel) -> Correctable<T> {
        let (c, h) = Correctable::pending();
        h.close(value, level)
            .expect("fresh correctable accepts close");
        c
    }

    /// A Correctable that has already failed with `err`.
    pub fn failed(err: Error) -> Correctable<T> {
        let (c, h) = Correctable::pending();
        h.fail(err).expect("fresh correctable accepts fail");
        c
    }

    /// Current state.
    pub fn state(&self) -> State {
        self.inner.shared.lock().state
    }

    /// Whether the Correctable has closed (final or error).
    pub fn is_closed(&self) -> bool {
        self.state() != State::Updating
    }

    /// The most recent view of any kind (final wins over preliminaries).
    pub fn latest(&self) -> Option<View<T>> {
        let g = self.inner.shared.lock();
        g.final_view.clone().or_else(|| g.updates.last().cloned())
    }

    /// The final view, if closed successfully.
    pub fn final_view(&self) -> Option<View<T>> {
        self.inner.shared.lock().final_view.clone()
    }

    /// The error, if closed exceptionally.
    pub fn error(&self) -> Option<Error> {
        self.inner.shared.lock().error.clone()
    }

    /// All preliminary views delivered so far (excludes the final view).
    pub fn preliminary_views(&self) -> Vec<View<T>> {
        self.inner.shared.lock().updates.clone()
    }

    /// Registers a callback for every preliminary view.
    ///
    /// Views delivered before registration are replayed to the callback
    /// immediately, so late observers see the full incremental history.
    /// Returns `self` for chaining.
    pub fn on_update(&self, f: impl FnMut(&View<T>) + Send + 'static) -> &Self {
        {
            let mut g = self.inner.shared.lock();
            g.update_cbs.push(UpdateEntry {
                f: Some(Box::new(f)),
                seen: 0,
            });
        }
        Self::pump_updates(&self.inner);
        self
    }

    /// Registers a callback for the final view. If already final, the
    /// callback runs immediately. Returns `self` for chaining.
    pub fn on_final(&self, f: impl FnOnce(&View<T>) + Send + 'static) -> &Self {
        let ready = {
            let mut g = self.inner.shared.lock();
            match g.state {
                State::Final => g.final_view.clone(),
                State::Updating => {
                    g.final_cbs.push(Box::new(f));
                    return self;
                }
                State::Error => return self,
            }
        };
        if let Some(v) = ready {
            f(&v);
        }
        self
    }

    /// Registers a callback for the error outcome. If already failed, the
    /// callback runs immediately. Returns `self` for chaining.
    pub fn on_error(&self, f: impl FnOnce(&Error) + Send + 'static) -> &Self {
        let ready = {
            let mut g = self.inner.shared.lock();
            match g.state {
                State::Error => g.error.clone(),
                State::Updating => {
                    g.error_cbs.push(Box::new(f));
                    return self;
                }
                State::Final => return self,
            }
        };
        if let Some(e) = ready {
            f(&e);
        }
        self
    }

    /// Registers all three callbacks at once — the paper's `setCallbacks`.
    /// Returns a clone for chaining.
    pub fn set_callbacks(
        &self,
        on_update: impl FnMut(&View<T>) + Send + 'static,
        on_final: impl FnOnce(&View<T>) + Send + 'static,
        on_error: impl FnOnce(&Error) + Send + 'static,
    ) -> Correctable<T> {
        self.on_update(on_update);
        self.on_final(on_final);
        self.on_error(on_error);
        self.clone()
    }

    /// Blocks the calling thread until the Correctable closes, returning
    /// the final view.
    ///
    /// # Errors
    ///
    /// Returns the closing [`Error`], or [`Error::Timeout`] if `timeout`
    /// elapses first.
    pub fn wait_final(&self, timeout: Duration) -> Result<View<T>, Error> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.inner.shared.lock();
        loop {
            match g.state {
                State::Final => return Ok(g.final_view.clone().expect("final state has a view")),
                State::Error => return Err(g.error.clone().expect("error state has an error")),
                State::Updating => {}
            }
            // Preliminary views also notify the condvar, so loop until the
            // state actually closes or the deadline passes.
            let now = std::time::Instant::now();
            if now >= deadline || self.inner.cond.wait_for(&mut g, deadline - now).timed_out() {
                return Err(Error::Timeout);
            }
        }
    }

    /// Blocks until at least one view (preliminary or final) is available
    /// and returns the latest.
    ///
    /// # Errors
    ///
    /// Returns the closing [`Error`] if the operation failed without
    /// delivering any view, or [`Error::Timeout`] on timeout.
    pub fn wait_any(&self, timeout: Duration) -> Result<View<T>, Error> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.inner.shared.lock();
        loop {
            if let Some(v) = g.final_view.clone().or_else(|| g.updates.last().cloned()) {
                return Ok(v);
            }
            if g.state == State::Error {
                return Err(g.error.clone().expect("error state has an error"));
            }
            let now = std::time::Instant::now();
            if now >= deadline || self.inner.cond.wait_for(&mut g, deadline - now).timed_out() {
                return Err(Error::Timeout);
            }
        }
    }

    /// Dispatches pending preliminary views to update callbacks.
    ///
    /// Invariant: no user callback runs while the lock is held, and each
    /// callback sees each view exactly once, in order. Re-entrant calls
    /// (a callback delivering more views) are safe: the running entry is
    /// temporarily vacated, so the nested pump skips it.
    fn pump_updates(inner: &Arc<Inner<T>>) {
        loop {
            let mut work: Option<(usize, UpdateFn<T>, View<T>)> = None;
            {
                let mut g = inner.shared.lock();
                let n = g.updates.len();
                for i in 0..g.update_cbs.len() {
                    let entry = &mut g.update_cbs[i];
                    if entry.f.is_some() && entry.seen < n {
                        let seen = entry.seen;
                        entry.seen += 1;
                        let f = entry.f.take().expect("checked is_some");
                        let view = g.updates[seen].clone();
                        work = Some((i, f, view));
                        break;
                    }
                }
            }
            match work {
                None => return,
                Some((i, mut f, view)) => {
                    f(&view);
                    let mut g = inner.shared.lock();
                    g.update_cbs[i].f = Some(f);
                }
            }
        }
    }
}

impl<T: Clone + Send + 'static> Handle<T> {
    /// Delivers a preliminary view (*updating → updating*).
    ///
    /// # Errors
    ///
    /// Returns [`ClosedError`] if the Correctable already closed.
    pub fn update(&self, value: T, level: ConsistencyLevel) -> Result<(), ClosedError> {
        {
            let mut g = self.inner.shared.lock();
            if g.state != State::Updating {
                return Err(ClosedError);
            }
            g.updates.push(View::new(value, level));
        }
        self.inner.cond.notify_all();
        Correctable::pump_updates(&self.inner);
        Ok(())
    }

    /// Closes with the final view (*updating → final*).
    ///
    /// # Errors
    ///
    /// Returns [`ClosedError`] if the Correctable already closed.
    pub fn close(&self, value: T, level: ConsistencyLevel) -> Result<(), ClosedError> {
        let (view, cbs) = {
            let mut g = self.inner.shared.lock();
            if g.state != State::Updating {
                return Err(ClosedError);
            }
            g.state = State::Final;
            let view = View::new(value, level);
            g.final_view = Some(view.clone());
            // Error callbacks can never fire now; drop them.
            g.error_cbs.clear();
            (view, std::mem::take(&mut g.final_cbs))
        };
        self.inner.cond.notify_all();
        for cb in cbs {
            cb(&view);
        }
        Ok(())
    }

    /// Closes with an error (*updating → error*).
    ///
    /// # Errors
    ///
    /// Returns [`ClosedError`] if the Correctable already closed.
    pub fn fail(&self, err: Error) -> Result<(), ClosedError> {
        let cbs = {
            let mut g = self.inner.shared.lock();
            if g.state != State::Updating {
                return Err(ClosedError);
            }
            g.state = State::Error;
            g.error = Some(err.clone());
            g.final_cbs.clear();
            std::mem::take(&mut g.error_cbs)
        };
        self.inner.cond.notify_all();
        for cb in cbs {
            cb(&err);
        }
        Ok(())
    }

    /// Whether the Correctable is still open.
    pub fn is_open(&self) -> bool {
        self.inner.shared.lock().state == State::Updating
    }

    /// A consumer handle for the same operation.
    pub fn correctable(&self) -> Correctable<T> {
        Correctable {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone + Send + 'static + std::fmt::Debug> std::fmt::Debug for Correctable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.shared.lock();
        f.debug_struct("Correctable")
            .field("state", &g.state)
            .field("updates", &g.updates.len())
            .field("final", &g.final_view)
            .field("error", &g.error)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;

    use crate::level::ConsistencyLevel::{Strong, Weak};

    #[test]
    fn lifecycle_update_then_close() {
        let (c, h) = Correctable::<i32>::pending();
        assert_eq!(c.state(), State::Updating);
        h.update(1, Weak).unwrap();
        assert_eq!(c.state(), State::Updating);
        assert_eq!(c.latest().unwrap().value, 1);
        h.close(2, Strong).unwrap();
        assert_eq!(c.state(), State::Final);
        assert_eq!(c.final_view().unwrap().value, 2);
        assert_eq!(c.latest().unwrap().value, 2);
        assert_eq!(c.preliminary_views().len(), 1);
    }

    #[test]
    fn no_transitions_after_close() {
        let (c, h) = Correctable::<i32>::pending();
        h.close(1, Strong).unwrap();
        assert_eq!(h.update(2, Weak), Err(ClosedError));
        assert_eq!(h.close(3, Strong), Err(ClosedError));
        assert_eq!(h.fail(Error::Timeout), Err(ClosedError));
        assert_eq!(c.final_view().unwrap().value, 1);
    }

    #[test]
    fn no_transitions_after_fail() {
        let (c, h) = Correctable::<i32>::pending();
        h.fail(Error::Timeout).unwrap();
        assert_eq!(c.state(), State::Error);
        assert_eq!(h.update(1, Weak), Err(ClosedError));
        assert_eq!(c.error(), Some(Error::Timeout));
    }

    #[test]
    fn callbacks_fire_in_order() {
        let (c, h) = Correctable::<i32>::pending();
        let log = StdArc::new(Mutex::new(Vec::<String>::new()));
        let l1 = StdArc::clone(&log);
        let l2 = StdArc::clone(&log);
        c.on_update(move |v| l1.lock().push(format!("u{}", v.value)));
        c.on_final(move |v| l2.lock().push(format!("f{}", v.value)));
        h.update(1, Weak).unwrap();
        h.update(2, Weak).unwrap();
        h.close(3, Strong).unwrap();
        assert_eq!(*log.lock(), vec!["u1", "u2", "f3"]);
    }

    #[test]
    fn late_callbacks_replay_history() {
        let (c, h) = Correctable::<i32>::pending();
        h.update(1, Weak).unwrap();
        h.close(2, Strong).unwrap();
        let log = StdArc::new(Mutex::new(Vec::<i32>::new()));
        let (l1, l2) = (StdArc::clone(&log), StdArc::clone(&log));
        c.on_update(move |v| l1.lock().push(v.value));
        c.on_final(move |v| l2.lock().push(v.value * 100));
        assert_eq!(*log.lock(), vec![1, 200]);
    }

    #[test]
    fn error_callback_fires_and_final_does_not() {
        let (c, h) = Correctable::<i32>::pending();
        let fired = StdArc::new(AtomicUsize::new(0));
        let (f1, f2) = (StdArc::clone(&fired), StdArc::clone(&fired));
        c.on_final(move |_| {
            f1.fetch_add(100, Ordering::SeqCst);
        });
        c.on_error(move |_| {
            f2.fetch_add(1, Ordering::SeqCst);
        });
        h.fail(Error::Aborted).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn reentrant_callback_is_safe() {
        let (c, h) = Correctable::<i32>::pending();
        let h2 = h.clone();
        let seen = StdArc::new(Mutex::new(Vec::new()));
        let s = StdArc::clone(&seen);
        c.on_update(move |v| {
            s.lock().push(v.value);
            if v.value == 1 {
                // Deliver another view from inside the callback.
                h2.update(2, Weak).unwrap();
            }
        });
        h.update(1, Weak).unwrap();
        assert_eq!(*seen.lock(), vec![1, 2]);
    }

    #[test]
    fn ready_and_failed_constructors() {
        let c = Correctable::ready(9);
        assert_eq!(c.state(), State::Final);
        assert_eq!(c.final_view().unwrap().level, Strong);
        let f = Correctable::<i32>::failed(Error::Aborted);
        assert_eq!(f.state(), State::Error);
    }

    #[test]
    fn wait_final_across_threads() {
        let (c, h) = Correctable::<i32>::pending();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            h.update(1, Weak).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            h.close(2, Strong).unwrap();
        });
        let v = c.wait_final(Duration::from_secs(5)).unwrap();
        assert_eq!(v.value, 2);
        t.join().unwrap();
    }

    #[test]
    fn wait_any_returns_preliminary() {
        let (c, h) = Correctable::<i32>::pending();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            h.update(7, Weak).unwrap();
            // Never closes; wait_any must still return.
        });
        let v = c.wait_any(Duration::from_secs(5)).unwrap();
        assert_eq!(v.value, 7);
        assert_eq!(v.level, Weak);
        t.join().unwrap();
    }

    #[test]
    fn wait_final_times_out() {
        let (c, _h) = Correctable::<i32>::pending();
        assert_eq!(c.wait_final(Duration::from_millis(10)), Err(Error::Timeout));
    }

    #[test]
    fn wait_final_propagates_error() {
        let (c, h) = Correctable::<i32>::pending();
        h.fail(Error::Unavailable("down".into())).unwrap();
        assert_eq!(
            c.wait_final(Duration::from_millis(10)),
            Err(Error::Unavailable("down".into()))
        );
    }

    #[test]
    fn multiple_update_callbacks_each_see_all_views() {
        let (c, h) = Correctable::<i32>::pending();
        let a = StdArc::new(Mutex::new(Vec::new()));
        let b = StdArc::new(Mutex::new(Vec::new()));
        let (ca, cb) = (StdArc::clone(&a), StdArc::clone(&b));
        c.on_update(move |v| ca.lock().push(v.value));
        c.on_update(move |v| cb.lock().push(v.value));
        h.update(1, Weak).unwrap();
        h.update(2, Weak).unwrap();
        assert_eq!(*a.lock(), vec![1, 2]);
        assert_eq!(*b.lock(), vec![1, 2]);
    }

    #[test]
    fn handle_correctable_accessor() {
        let (_, h) = Correctable::<i32>::pending();
        assert!(h.is_open());
        let c = h.correctable();
        h.close(5, Strong).unwrap();
        assert!(!h.is_open());
        assert_eq!(c.final_view().unwrap().value, 5);
    }
}
