//! The `Correctable` abstraction itself: a multi-view generalization of
//! Promises (Figure 3 of the paper).
//!
//! A `Correctable` starts in the **updating** state. Each preliminary view
//! triggers an *updating → updating* transition and the `on_update`
//! callbacks; the final view closes it (*updating → final*, `on_final`);
//! an error closes it exceptionally (*updating → error*, `on_error`).
//! Once closed, the state never changes again.
//!
//! The consumer side is [`Correctable`]; the producer side (the library /
//! binding) drives it through a [`Handle`]. Both are cheaply cloneable and
//! thread-safe; callbacks never run while internal locks are held, so they
//! may freely create, update, or wait on other Correctables.
//!
//! ## Performance model
//!
//! The state machine is built to make the callback-driven fast path
//! allocation-lean and syscall-free:
//!
//! - views and callbacks live in [`InlineVec`]s sized for the ≤4
//!   consistency levels the workspace ships, so a typical invocation
//!   performs exactly one allocation (the shared `Arc`) plus one `Box` per
//!   registered closure;
//! - a packed atomic **state word** mirrors the closing state and whether
//!   any thread ever blocked in [`Correctable::wait_final`] /
//!   [`Correctable::wait_any`]; producers consult it after releasing the
//!   lock and only touch the condvar on the parked slow path, so
//!   callback-only consumers (the common case in the simulators and
//!   benchmarks) never pay for wakeups;
//! - `state()` / `is_closed()` / `outcome()`-style probes read the state
//!   word without locking.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{ClosedError, Error};
use crate::inline::InlineVec;
use crate::level::ConsistencyLevel;
use crate::view::View;

/// Observable state of a [`Correctable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum State {
    /// Still expecting stronger views.
    Updating,
    /// Closed with a final (strongest requested) view.
    Final,
    /// Closed with an error.
    Error,
}

// Layout of `Inner::word`: low two bits carry the `State`, bit 2 records
// that some thread has parked on the condvar (sticky, set under the lock).
const ST_MASK: u32 = 0b11;
const ST_UPDATING: u32 = 0;
const ST_FINAL: u32 = 1;
const ST_ERROR: u32 = 2;
const HAS_WAITERS: u32 = 0b100;

fn decode(word: u32) -> State {
    match word & ST_MASK {
        ST_FINAL => State::Final,
        ST_ERROR => State::Error,
        _ => State::Updating,
    }
}

type UpdateFn<T> = Box<dyn FnMut(&View<T>) + Send>;
type FinalFn<T> = Box<dyn FnOnce(&View<T>) + Send>;
type ErrorFn = Box<dyn FnOnce(&Error) + Send>;

struct UpdateEntry<T> {
    /// Taken out while the callback runs so re-entrant dispatch skips it.
    f: Option<UpdateFn<T>>,
    /// Number of preliminary views already delivered to this callback.
    seen: usize,
}

struct Shared<T> {
    state: State,
    /// Preliminary views, in delivery order.
    updates: InlineVec<View<T>, 2>,
    /// The closing view, if `state == Final`.
    final_view: Option<View<T>>,
    /// The closing error, if `state == Error`.
    error: Option<Error>,
    update_cbs: InlineVec<UpdateEntry<T>, 2>,
    final_cbs: InlineVec<FinalFn<T>, 2>,
    error_cbs: InlineVec<ErrorFn, 1>,
}

struct Inner<T> {
    /// Lock-free mirror of the closing state plus the waiter flag; the
    /// authoritative transition still happens under `shared`'s lock.
    word: AtomicU32,
    shared: Mutex<Shared<T>>,
    cond: Condvar,
}

impl<T> Inner<T> {
    /// Publishes `state` into the word, preserving the waiter flag, and
    /// reports whether any thread is parked. Must be called with the
    /// `shared` lock held so it cannot race a waiter registering itself.
    fn publish(&self, state: u32) -> bool {
        let waiters = self.word.load(Ordering::Relaxed) & HAS_WAITERS;
        self.word.store(state | waiters, Ordering::Release);
        waiters != 0
    }
}

/// Consumer handle to an operation with incremental consistency guarantees.
///
/// Cloning is cheap and observes the same underlying operation.
pub struct Correctable<T> {
    inner: Arc<Inner<T>>,
}

/// Producer handle used by the library and bindings to deliver views.
///
/// Cloning is cheap; all clones drive the same `Correctable`, and the
/// state machine guarantees at most one closing transition overall.
pub struct Handle<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Correctable<T> {
    fn clone(&self) -> Self {
        Correctable {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        Handle {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone + Send + 'static> Correctable<T> {
    /// Creates an open Correctable and its producer handle.
    pub fn pending() -> (Correctable<T>, Handle<T>) {
        let inner = Arc::new(Inner {
            word: AtomicU32::new(ST_UPDATING),
            shared: Mutex::new(Shared {
                state: State::Updating,
                updates: InlineVec::new(),
                final_view: None,
                error: None,
                update_cbs: InlineVec::new(),
                final_cbs: InlineVec::new(),
                error_cbs: InlineVec::new(),
            }),
            cond: Condvar::new(),
        });
        (
            Correctable {
                inner: Arc::clone(&inner),
            },
            Handle { inner },
        )
    }

    /// A Correctable that is already final with `value` at [`ConsistencyLevel::STRONG`].
    pub fn ready(value: T) -> Correctable<T> {
        Correctable::ready_at(value, ConsistencyLevel::STRONG)
    }

    /// A Correctable that is already final with `value` at `level`.
    pub fn ready_at(value: T, level: ConsistencyLevel) -> Correctable<T> {
        let (c, h) = Correctable::pending();
        h.close(value, level)
            .expect("fresh correctable accepts close");
        c
    }

    /// A Correctable that has already failed with `err`.
    pub fn failed(err: Error) -> Correctable<T> {
        let (c, h) = Correctable::pending();
        h.fail(err).expect("fresh correctable accepts fail");
        c
    }

    /// Current state. Lock-free.
    pub fn state(&self) -> State {
        decode(self.inner.word.load(Ordering::Acquire))
    }

    /// Whether the Correctable has closed (final or error). Lock-free.
    pub fn is_closed(&self) -> bool {
        self.state() != State::Updating
    }

    /// The closing outcome, if the Correctable has closed: the final view
    /// on success, the closing error on failure. `None` while updating.
    ///
    /// The open probe is lock-free, which makes this the cheapest way for
    /// combinators to skip callback registration on still-open inputs.
    pub fn outcome(&self) -> Option<Result<View<T>, Error>> {
        match self.state() {
            State::Updating => None,
            State::Final => {
                let g = self.inner.shared.lock();
                Some(Ok(g.final_view.clone().expect("final state has a view")))
            }
            State::Error => {
                let g = self.inner.shared.lock();
                Some(Err(g.error.clone().expect("error state has an error")))
            }
        }
    }

    /// The most recent view of any kind (final wins over preliminaries).
    pub fn latest(&self) -> Option<View<T>> {
        let g = self.inner.shared.lock();
        g.final_view.clone().or_else(|| g.updates.last().cloned())
    }

    /// The final view, if closed successfully.
    pub fn final_view(&self) -> Option<View<T>> {
        self.inner.shared.lock().final_view.clone()
    }

    /// The error, if closed exceptionally.
    pub fn error(&self) -> Option<Error> {
        self.inner.shared.lock().error.clone()
    }

    /// All preliminary views delivered so far (excludes the final view).
    pub fn preliminary_views(&self) -> Vec<View<T>> {
        self.inner.shared.lock().updates.to_vec()
    }

    /// Registers a callback for every preliminary view.
    ///
    /// Views delivered before registration are replayed to the callback
    /// immediately, so late observers see the full incremental history.
    /// Returns `self` for chaining.
    pub fn on_update(&self, f: impl FnMut(&View<T>) + Send + 'static) -> &Self {
        let replay = {
            let mut g = self.inner.shared.lock();
            g.update_cbs.push(UpdateEntry {
                f: Some(Box::new(f)),
                seen: 0,
            });
            !g.updates.is_empty()
        };
        if replay {
            Self::pump_updates(&self.inner);
        }
        self
    }

    /// Registers a callback for the final view. If already final, the
    /// callback runs immediately. Returns `self` for chaining.
    pub fn on_final(&self, f: impl FnOnce(&View<T>) + Send + 'static) -> &Self {
        let ready = {
            let mut g = self.inner.shared.lock();
            match g.state {
                State::Final => g.final_view.clone(),
                State::Updating => {
                    g.final_cbs.push(Box::new(f));
                    return self;
                }
                State::Error => return self,
            }
        };
        if let Some(v) = ready {
            f(&v);
        }
        self
    }

    /// Registers a callback for the error outcome. If already failed, the
    /// callback runs immediately. Returns `self` for chaining.
    pub fn on_error(&self, f: impl FnOnce(&Error) + Send + 'static) -> &Self {
        let ready = {
            let mut g = self.inner.shared.lock();
            match g.state {
                State::Error => g.error.clone(),
                State::Updating => {
                    g.error_cbs.push(Box::new(f));
                    return self;
                }
                State::Final => return self,
            }
        };
        if let Some(e) = ready {
            f(&e);
        }
        self
    }

    /// Registers all three callbacks at once — the paper's `setCallbacks`.
    /// Returns a clone for chaining.
    pub fn set_callbacks(
        &self,
        on_update: impl FnMut(&View<T>) + Send + 'static,
        on_final: impl FnOnce(&View<T>) + Send + 'static,
        on_error: impl FnOnce(&Error) + Send + 'static,
    ) -> Correctable<T> {
        self.on_update(on_update);
        self.on_final(on_final);
        self.on_error(on_error);
        self.clone()
    }

    /// Blocks the calling thread until the Correctable closes, returning
    /// the final view.
    ///
    /// # Errors
    ///
    /// Returns the closing [`Error`], or [`Error::Timeout`] if `timeout`
    /// elapses first.
    pub fn wait_final(&self, timeout: Duration) -> Result<View<T>, Error> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.inner.shared.lock();
        loop {
            match g.state {
                State::Final => return Ok(g.final_view.clone().expect("final state has a view")),
                State::Error => return Err(g.error.clone().expect("error state has an error")),
                State::Updating => {}
            }
            // Announce the parked waiter while still holding the lock, so
            // the producer's post-unlock check cannot miss it.
            self.inner.word.fetch_or(HAS_WAITERS, Ordering::Relaxed);
            // Preliminary views also notify the condvar, so loop until the
            // state actually closes or the deadline passes.
            let now = std::time::Instant::now();
            if now >= deadline || self.inner.cond.wait_for(&mut g, deadline - now).timed_out() {
                return Err(Error::Timeout);
            }
        }
    }

    /// Blocks until at least one view (preliminary or final) is available
    /// and returns the latest.
    ///
    /// # Errors
    ///
    /// Returns the closing [`Error`] if the operation failed without
    /// delivering any view, or [`Error::Timeout`] on timeout.
    pub fn wait_any(&self, timeout: Duration) -> Result<View<T>, Error> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.inner.shared.lock();
        loop {
            if let Some(v) = g.final_view.clone().or_else(|| g.updates.last().cloned()) {
                return Ok(v);
            }
            if g.state == State::Error {
                return Err(g.error.clone().expect("error state has an error"));
            }
            self.inner.word.fetch_or(HAS_WAITERS, Ordering::Relaxed);
            let now = std::time::Instant::now();
            if now >= deadline || self.inner.cond.wait_for(&mut g, deadline - now).timed_out() {
                return Err(Error::Timeout);
            }
        }
    }

    /// Dispatches pending preliminary views to update callbacks.
    ///
    /// Invariant: no user callback runs while the lock is held, and each
    /// callback sees each view exactly once, in order. Re-entrant calls
    /// (a callback delivering more views) are safe: the running entry is
    /// temporarily vacated, so the nested pump skips it. Restoring the
    /// previous callback and claiming the next piece of work share one
    /// lock acquisition.
    fn pump_updates(inner: &Arc<Inner<T>>) {
        let mut restore: Option<(usize, UpdateFn<T>)> = None;
        loop {
            let work = {
                let mut g = inner.shared.lock();
                if let Some((i, f)) = restore.take() {
                    g.update_cbs[i].f = Some(f);
                }
                let n = g.updates.len();
                let mut found = None;
                for i in 0..g.update_cbs.len() {
                    let entry = &mut g.update_cbs[i];
                    if entry.f.is_some() && entry.seen < n {
                        let seen = entry.seen;
                        entry.seen += 1;
                        let f = entry.f.take().expect("checked is_some");
                        let view = g.updates[seen].clone();
                        found = Some((i, f, view));
                        break;
                    }
                }
                found
            };
            match work {
                None => return,
                Some((i, mut f, view)) => {
                    f(&view);
                    restore = Some((i, f));
                }
            }
        }
    }
}

impl<T: Clone + Send + 'static> Handle<T> {
    /// Delivers a preliminary view (*updating → updating*).
    ///
    /// # Errors
    ///
    /// Returns [`ClosedError`] if the Correctable already closed.
    pub fn update(&self, value: T, level: ConsistencyLevel) -> Result<(), ClosedError> {
        let (notify, pump) = {
            let mut g = self.inner.shared.lock();
            if g.state != State::Updating {
                return Err(ClosedError);
            }
            g.updates.push(View::new(value, level));
            let notify = self.inner.word.load(Ordering::Relaxed) & HAS_WAITERS != 0;
            (notify, !g.update_cbs.is_empty())
        };
        if notify {
            self.inner.cond.notify_all();
        }
        if pump {
            Correctable::pump_updates(&self.inner);
        }
        Ok(())
    }

    /// Closes with the final view (*updating → final*).
    ///
    /// # Errors
    ///
    /// Returns [`ClosedError`] if the Correctable already closed.
    pub fn close(&self, value: T, level: ConsistencyLevel) -> Result<(), ClosedError> {
        let (view, cbs, notify) = {
            let mut g = self.inner.shared.lock();
            if g.state != State::Updating {
                return Err(ClosedError);
            }
            g.state = State::Final;
            let view = View::new(value, level);
            let cbs = std::mem::take(&mut g.final_cbs);
            // Clone the view only when a callback actually needs it.
            let for_cbs = if cbs.is_empty() {
                None
            } else {
                Some(view.clone())
            };
            g.final_view = Some(view);
            // Error callbacks can never fire now; drop them.
            g.error_cbs.clear();
            let notify = self.inner.publish(ST_FINAL);
            (for_cbs, cbs, notify)
        };
        if notify {
            self.inner.cond.notify_all();
        }
        if let Some(view) = view {
            for cb in cbs {
                cb(&view);
            }
        }
        Ok(())
    }

    /// Closes with an error (*updating → error*).
    ///
    /// # Errors
    ///
    /// Returns [`ClosedError`] if the Correctable already closed.
    pub fn fail(&self, err: Error) -> Result<(), ClosedError> {
        let (cbs, notify) = {
            let mut g = self.inner.shared.lock();
            if g.state != State::Updating {
                return Err(ClosedError);
            }
            g.state = State::Error;
            g.error = Some(err.clone());
            g.final_cbs.clear();
            let notify = self.inner.publish(ST_ERROR);
            (std::mem::take(&mut g.error_cbs), notify)
        };
        if notify {
            self.inner.cond.notify_all();
        }
        for cb in cbs {
            cb(&err);
        }
        Ok(())
    }

    /// Whether the Correctable is still open. Lock-free.
    pub fn is_open(&self) -> bool {
        decode(self.inner.word.load(Ordering::Acquire)) == State::Updating
    }

    /// A consumer handle for the same operation.
    pub fn correctable(&self) -> Correctable<T> {
        Correctable {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone + Send + 'static + std::fmt::Debug> std::fmt::Debug for Correctable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.shared.lock();
        f.debug_struct("Correctable")
            .field("state", &g.state)
            .field("updates", &g.updates.len())
            .field("final", &g.final_view)
            .field("error", &g.error)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;

    use crate::level::ConsistencyLevel;

    const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;

    const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
    #[test]
    fn lifecycle_update_then_close() {
        let (c, h) = Correctable::<i32>::pending();
        assert_eq!(c.state(), State::Updating);
        h.update(1, WEAK).unwrap();
        assert_eq!(c.state(), State::Updating);
        assert_eq!(c.latest().unwrap().value, 1);
        h.close(2, STRONG).unwrap();
        assert_eq!(c.state(), State::Final);
        assert_eq!(c.final_view().unwrap().value, 2);
        assert_eq!(c.latest().unwrap().value, 2);
        assert_eq!(c.preliminary_views().len(), 1);
    }

    #[test]
    fn no_transitions_after_close() {
        let (c, h) = Correctable::<i32>::pending();
        h.close(1, STRONG).unwrap();
        assert_eq!(h.update(2, WEAK), Err(ClosedError));
        assert_eq!(h.close(3, STRONG), Err(ClosedError));
        assert_eq!(h.fail(Error::Timeout), Err(ClosedError));
        assert_eq!(c.final_view().unwrap().value, 1);
    }

    #[test]
    fn no_transitions_after_fail() {
        let (c, h) = Correctable::<i32>::pending();
        h.fail(Error::Timeout).unwrap();
        assert_eq!(c.state(), State::Error);
        assert_eq!(h.update(1, WEAK), Err(ClosedError));
        assert_eq!(c.error(), Some(Error::Timeout));
    }

    #[test]
    fn callbacks_fire_in_order() {
        let (c, h) = Correctable::<i32>::pending();
        let log = StdArc::new(Mutex::new(Vec::<String>::new()));
        let l1 = StdArc::clone(&log);
        let l2 = StdArc::clone(&log);
        c.on_update(move |v| l1.lock().push(format!("u{}", v.value)));
        c.on_final(move |v| l2.lock().push(format!("f{}", v.value)));
        h.update(1, WEAK).unwrap();
        h.update(2, WEAK).unwrap();
        h.close(3, STRONG).unwrap();
        assert_eq!(*log.lock(), vec!["u1", "u2", "f3"]);
    }

    #[test]
    fn late_callbacks_replay_history() {
        let (c, h) = Correctable::<i32>::pending();
        h.update(1, WEAK).unwrap();
        h.close(2, STRONG).unwrap();
        let log = StdArc::new(Mutex::new(Vec::<i32>::new()));
        let (l1, l2) = (StdArc::clone(&log), StdArc::clone(&log));
        c.on_update(move |v| l1.lock().push(v.value));
        c.on_final(move |v| l2.lock().push(v.value * 100));
        assert_eq!(*log.lock(), vec![1, 200]);
    }

    #[test]
    fn error_callback_fires_and_final_does_not() {
        let (c, h) = Correctable::<i32>::pending();
        let fired = StdArc::new(AtomicUsize::new(0));
        let (f1, f2) = (StdArc::clone(&fired), StdArc::clone(&fired));
        c.on_final(move |_| {
            f1.fetch_add(100, Ordering::SeqCst);
        });
        c.on_error(move |_| {
            f2.fetch_add(1, Ordering::SeqCst);
        });
        h.fail(Error::Aborted).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn reentrant_callback_is_safe() {
        let (c, h) = Correctable::<i32>::pending();
        let h2 = h.clone();
        let seen = StdArc::new(Mutex::new(Vec::new()));
        let s = StdArc::clone(&seen);
        c.on_update(move |v| {
            s.lock().push(v.value);
            if v.value == 1 {
                // Deliver another view from inside the callback.
                h2.update(2, WEAK).unwrap();
            }
        });
        h.update(1, WEAK).unwrap();
        assert_eq!(*seen.lock(), vec![1, 2]);
    }

    #[test]
    fn ready_and_failed_constructors() {
        let c = Correctable::ready(9);
        assert_eq!(c.state(), State::Final);
        assert_eq!(c.final_view().unwrap().level, STRONG);
        let f = Correctable::<i32>::failed(Error::Aborted);
        assert_eq!(f.state(), State::Error);
    }

    #[test]
    fn wait_final_across_threads() {
        let (c, h) = Correctable::<i32>::pending();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            h.update(1, WEAK).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            h.close(2, STRONG).unwrap();
        });
        let v = c.wait_final(Duration::from_secs(5)).unwrap();
        assert_eq!(v.value, 2);
        t.join().unwrap();
    }

    #[test]
    fn wait_any_returns_preliminary() {
        let (c, h) = Correctable::<i32>::pending();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            h.update(7, WEAK).unwrap();
            // Never closes; wait_any must still return.
        });
        let v = c.wait_any(Duration::from_secs(5)).unwrap();
        assert_eq!(v.value, 7);
        assert_eq!(v.level, WEAK);
        t.join().unwrap();
    }

    #[test]
    fn wait_final_times_out() {
        let (c, _h) = Correctable::<i32>::pending();
        assert_eq!(c.wait_final(Duration::from_millis(10)), Err(Error::Timeout));
    }

    #[test]
    fn wait_final_propagates_error() {
        let (c, h) = Correctable::<i32>::pending();
        h.fail(Error::Unavailable("down".into())).unwrap();
        assert_eq!(
            c.wait_final(Duration::from_millis(10)),
            Err(Error::Unavailable("down".into()))
        );
    }

    #[test]
    fn multiple_update_callbacks_each_see_all_views() {
        let (c, h) = Correctable::<i32>::pending();
        let a = StdArc::new(Mutex::new(Vec::new()));
        let b = StdArc::new(Mutex::new(Vec::new()));
        let (ca, cb) = (StdArc::clone(&a), StdArc::clone(&b));
        c.on_update(move |v| ca.lock().push(v.value));
        c.on_update(move |v| cb.lock().push(v.value));
        h.update(1, WEAK).unwrap();
        h.update(2, WEAK).unwrap();
        assert_eq!(*a.lock(), vec![1, 2]);
        assert_eq!(*b.lock(), vec![1, 2]);
    }

    #[test]
    fn handle_correctable_accessor() {
        let (_, h) = Correctable::<i32>::pending();
        assert!(h.is_open());
        let c = h.correctable();
        h.close(5, STRONG).unwrap();
        assert!(!h.is_open());
        assert_eq!(c.final_view().unwrap().value, 5);
    }

    #[test]
    fn outcome_reports_open_final_and_error() {
        let (c, h) = Correctable::<i32>::pending();
        assert!(c.outcome().is_none());
        h.update(1, WEAK).unwrap();
        assert!(c.outcome().is_none());
        h.close(2, STRONG).unwrap();
        let v = c.outcome().unwrap().unwrap();
        assert_eq!((v.value, v.level), (2, STRONG));

        let (c, h) = Correctable::<i32>::pending();
        h.fail(Error::Aborted).unwrap();
        assert_eq!(c.outcome().unwrap().unwrap_err(), Error::Aborted);
    }

    #[test]
    fn many_views_spill_past_inline_storage() {
        let (c, h) = Correctable::<i32>::pending();
        let seen = StdArc::new(Mutex::new(Vec::new()));
        let s = StdArc::clone(&seen);
        c.on_update(move |v| s.lock().push(v.value));
        for i in 0..16 {
            h.update(i, WEAK).unwrap();
        }
        h.close(99, STRONG).unwrap();
        assert_eq!(*seen.lock(), (0..16).collect::<Vec<_>>());
        assert_eq!(c.preliminary_views().len(), 16);
    }

    #[test]
    fn many_callbacks_spill_past_inline_storage() {
        let (c, h) = Correctable::<i32>::pending();
        let count = StdArc::new(AtomicUsize::new(0));
        for _ in 0..9 {
            let n = StdArc::clone(&count);
            c.on_final(move |_| {
                n.fetch_add(1, Ordering::SeqCst);
            });
        }
        h.close(1, STRONG).unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 9);
    }
}
