//! Error types for Correctable operations.

use std::fmt;

use crate::level::ConsistencyLevel;

/// Why an operation on a replicated object failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// The operation did not complete within its deadline.
    Timeout,
    /// The storage stack could not serve the operation (e.g. quorum lost).
    Unavailable(String),
    /// A requested consistency level is not offered by the binding.
    UnsupportedLevel(ConsistencyLevel),
    /// The storage rejected or failed the operation.
    Storage(String),
    /// The operation was aborted by the application.
    Aborted,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Timeout => write!(f, "operation timed out"),
            Error::Unavailable(why) => write!(f, "storage unavailable: {why}"),
            Error::UnsupportedLevel(l) => {
                write!(f, "consistency level '{l}' not offered by this binding")
            }
            Error::Storage(why) => write!(f, "storage error: {why}"),
            Error::Aborted => write!(f, "operation aborted"),
        }
    }
}

impl std::error::Error for Error {}

/// Error returned by producer-side [`Handle`](crate::Handle) methods when
/// the Correctable has already closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClosedError;

impl fmt::Display for ClosedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "correctable already closed")
    }
}

impl std::error::Error for ClosedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert_eq!(Error::Timeout.to_string(), "operation timed out");
        assert!(Error::Unavailable("quorum lost".into())
            .to_string()
            .contains("quorum lost"));
        assert!(Error::UnsupportedLevel(ConsistencyLevel::CAUSAL)
            .to_string()
            .contains("causal"));
        assert_eq!(ClosedError.to_string(), "correctable already closed");
    }
}
