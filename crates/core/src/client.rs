//! The application-facing API (§3.2 of the paper): `invokeWeak`,
//! `invokeStrong`, and `invoke`.
//!
//! A [`Client`] wraps a [`Binding`] and exposes the three methods of the
//! paper verbatim. `invoke_weak` and `invoke_strong` return Correctables
//! that close directly with a single view at one extreme of the
//! consistency/performance trade-off; `invoke` delivers incremental views
//! across all (or a chosen subset of) the binding's levels.

use crate::binding::{Binding, Upcall};
use crate::correctable::Correctable;
use crate::error::Error;
use crate::level::{ConsistencyLevel, LevelSelection};

/// A Correctables client bound to one storage stack.
pub struct Client<B: Binding> {
    binding: B,
    /// The binding's levels, sorted weakest-first once at construction —
    /// the hot invocation paths only ever need one end of this list.
    levels: Vec<ConsistencyLevel>,
}

impl<B: Binding> Client<B> {
    /// Wraps a binding.
    pub fn new(binding: B) -> Self {
        let mut levels = binding.consistency_levels();
        levels.sort();
        Client { binding, levels }
    }

    /// The underlying binding.
    pub fn binding(&self) -> &B {
        &self.binding
    }

    /// The consistency levels available through this client, weakest first.
    pub fn consistency_levels(&self) -> Vec<ConsistencyLevel> {
        self.levels.clone()
    }

    /// Invokes `op` with the weakest available consistency; the result
    /// closes with that single view.
    pub fn invoke_weak(&self, op: B::Op) -> Correctable<B::Val> {
        match self.levels.first() {
            Some(weakest) => self.submit(op, std::slice::from_ref(weakest)),
            None => Correctable::failed(Error::Unavailable(
                "binding advertises no consistency levels".into(),
            )),
        }
    }

    /// Invokes `op` with the strongest available consistency; the result
    /// closes with that single view.
    pub fn invoke_strong(&self, op: B::Op) -> Correctable<B::Val> {
        match self.levels.last() {
            Some(strongest) => self.submit(op, std::slice::from_ref(strongest)),
            None => Correctable::failed(Error::Unavailable(
                "binding advertises no consistency levels".into(),
            )),
        }
    }

    /// Invokes `op` with incremental consistency guarantees across all
    /// available levels: one preliminary view per intermediate level, then
    /// a final view at the strongest.
    pub fn invoke(&self, op: B::Op) -> Correctable<B::Val> {
        if self.levels.is_empty() {
            return Correctable::failed(Error::Unavailable("no consistency level selected".into()));
        }
        // The cached level list is already sorted and deduplicated, so the
        // all-levels fast path skips `LevelSelection::resolve` entirely.
        self.submit(op, &self.levels)
    }

    /// Invokes `op` delivering only the selected levels (the optional
    /// `levels` argument of the paper's `invoke`).
    pub fn invoke_with(&self, op: B::Op, selection: &LevelSelection) -> Correctable<B::Val> {
        if matches!(selection, LevelSelection::All) {
            return self.invoke(op);
        }
        match selection.resolve(&self.levels) {
            Ok(levels) if levels.is_empty() => {
                Correctable::failed(Error::Unavailable("no consistency level selected".into()))
            }
            Ok(levels) => self.submit(op, &levels),
            Err(bad) => Correctable::failed(Error::UnsupportedLevel(bad)),
        }
    }

    fn submit(&self, op: B::Op, levels: &[ConsistencyLevel]) -> Correctable<B::Val> {
        let (c, handle) = Correctable::pending();
        let upcall = Upcall::for_levels(handle, levels);
        self.binding.submit(op, levels, upcall);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correctable::State;
    use crate::level::ConsistencyLevel::{Causal, Strong, Weak};
    use parking_lot::Mutex;

    /// A binding that synchronously answers with `level.rank()` per level,
    /// recording which levels were requested.
    struct RankBinding {
        requested: Mutex<Vec<Vec<ConsistencyLevel>>>,
    }

    impl RankBinding {
        fn new() -> Self {
            RankBinding {
                requested: Mutex::new(Vec::new()),
            }
        }
    }

    impl Binding for RankBinding {
        type Op = ();
        type Val = u8;

        fn consistency_levels(&self) -> Vec<ConsistencyLevel> {
            vec![Weak, Causal, Strong]
        }

        fn submit(&self, _op: (), levels: &[ConsistencyLevel], upcall: Upcall<u8>) {
            self.requested.lock().push(levels.to_vec());
            for l in levels {
                upcall.deliver(l.rank(), *l);
            }
        }
    }

    #[test]
    fn invoke_weak_closes_at_weakest() {
        let client = Client::new(RankBinding::new());
        let c = client.invoke_weak(());
        assert_eq!(c.state(), State::Final);
        let v = c.final_view().unwrap();
        assert_eq!(v.level, Weak);
        assert_eq!(v.value, Weak.rank());
        assert_eq!(client.binding().requested.lock()[0], vec![Weak]);
    }

    #[test]
    fn invoke_strong_closes_at_strongest() {
        let client = Client::new(RankBinding::new());
        let c = client.invoke_strong(());
        let v = c.final_view().unwrap();
        assert_eq!(v.level, Strong);
        assert_eq!(client.binding().requested.lock()[0], vec![Strong]);
    }

    #[test]
    fn invoke_delivers_all_levels_incrementally() {
        let client = Client::new(RankBinding::new());
        let c = client.invoke(());
        assert_eq!(c.state(), State::Final);
        let prelims = c.preliminary_views();
        assert_eq!(prelims.len(), 2);
        assert_eq!(prelims[0].level, Weak);
        assert_eq!(prelims[1].level, Causal);
        assert_eq!(c.final_view().unwrap().level, Strong);
    }

    #[test]
    fn invoke_with_subset_skips_extraneous_levels() {
        let client = Client::new(RankBinding::new());
        let c = client.invoke_with((), &LevelSelection::Only(vec![Strong, Weak]));
        assert_eq!(c.preliminary_views().len(), 1);
        assert_eq!(
            client.binding().requested.lock()[0],
            vec![Weak, Strong],
            "causal must not be requested from the binding"
        );
        let _ = c;
    }

    #[test]
    fn invoke_with_unknown_level_fails() {
        let client = Client::new(RankBinding::new());
        let bogus = ConsistencyLevel::Custom {
            rank: 99,
            name: "x",
        };
        let c = client.invoke_with((), &LevelSelection::Only(vec![bogus]));
        assert_eq!(c.error(), Some(Error::UnsupportedLevel(bogus)));
    }
}
