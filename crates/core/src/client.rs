//! The application-facing API (§3.2 of the paper): `invokeWeak`,
//! `invokeStrong`, and `invoke`.
//!
//! A [`Client`] wraps a [`Binding`]. [`Client::invoke`] delivers
//! incremental views across all (or a chosen subset of) the binding's
//! levels; [`Client::invoke_at`] closes with a single view at one chosen
//! level. The paper's `invokeWeak` / `invokeStrong` are thin wrappers
//! over `invoke_at` at the two ends of the binding's
//! [`LevelSet`] — new levels never require new
//! methods.

use crate::binding::{Binding, Upcall};
use crate::correctable::Correctable;
use crate::error::Error;
use crate::level::{ConsistencyLevel, LevelSelection, LevelSet};

/// A Correctables client bound to one storage stack.
pub struct Client<B: Binding> {
    binding: B,
    /// The binding's advertised levels, validated and sorted weakest-first
    /// once at construction — the hot invocation paths only ever need one
    /// end or one member of this set.
    levels: LevelSet,
}

impl<B: Binding> Client<B> {
    /// Wraps a binding.
    pub fn new(binding: B) -> Self {
        let levels = binding.consistency_levels();
        Client { binding, levels }
    }

    /// The underlying binding.
    pub fn binding(&self) -> &B {
        &self.binding
    }

    /// The consistency levels available through this client, weakest first.
    pub fn consistency_levels(&self) -> &LevelSet {
        &self.levels
    }

    /// Invokes `op` closing with a single view at `level`, which must be
    /// one of the binding's advertised levels.
    pub fn invoke_at(&self, op: B::Op, level: ConsistencyLevel) -> Correctable<B::Val> {
        if !self.levels.contains(level) {
            return Correctable::failed(Error::UnsupportedLevel(level));
        }
        self.submit(op, std::slice::from_ref(&level))
    }

    /// Invokes `op` with the weakest available consistency; the result
    /// closes with that single view. Equivalent to [`Client::invoke_at`]
    /// at [`LevelSet::weakest`].
    pub fn invoke_weak(&self, op: B::Op) -> Correctable<B::Val> {
        match self.levels.weakest() {
            Some(weakest) => self.submit(op, std::slice::from_ref(&weakest)),
            None => Correctable::failed(Error::Unavailable(
                "binding advertises no consistency levels".into(),
            )),
        }
    }

    /// Invokes `op` with the strongest available consistency; the result
    /// closes with that single view. Equivalent to [`Client::invoke_at`]
    /// at [`LevelSet::strongest`].
    pub fn invoke_strong(&self, op: B::Op) -> Correctable<B::Val> {
        match self.levels.strongest() {
            Some(strongest) => self.submit(op, std::slice::from_ref(&strongest)),
            None => Correctable::failed(Error::Unavailable(
                "binding advertises no consistency levels".into(),
            )),
        }
    }

    /// Invokes `op` with incremental consistency guarantees across all
    /// available levels: one preliminary view per intermediate level, then
    /// a final view at the strongest.
    pub fn invoke(&self, op: B::Op) -> Correctable<B::Val> {
        if self.levels.is_empty() {
            return Correctable::failed(Error::Unavailable("no consistency level selected".into()));
        }
        // The cached level set is already sorted and validated, so the
        // all-levels fast path skips `LevelSelection::resolve` entirely.
        self.submit(op, self.levels.as_slice())
    }

    /// Invokes `op` delivering only the selected levels (the optional
    /// `levels` argument of the paper's `invoke`).
    pub fn invoke_with(&self, op: B::Op, selection: &LevelSelection) -> Correctable<B::Val> {
        if matches!(selection, LevelSelection::All) {
            return self.invoke(op);
        }
        match selection.resolve(&self.levels) {
            Ok(levels) if levels.is_empty() => {
                Correctable::failed(Error::Unavailable("no consistency level selected".into()))
            }
            Ok(levels) => self.submit(op, levels.as_slice()),
            Err(bad) => Correctable::failed(Error::UnsupportedLevel(bad)),
        }
    }

    fn submit(&self, op: B::Op, levels: &[ConsistencyLevel]) -> Correctable<B::Val> {
        let (c, handle) = Correctable::pending();
        let upcall = Upcall::for_levels(handle, levels);
        self.binding.submit(op, levels, upcall);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correctable::State;
    use parking_lot::Mutex;

    const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
    const CAUSAL: ConsistencyLevel = ConsistencyLevel::CAUSAL;
    const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;

    /// A binding that synchronously answers with `level.rank()` per level,
    /// recording which levels were requested.
    struct RankBinding {
        requested: Mutex<Vec<Vec<ConsistencyLevel>>>,
    }

    impl RankBinding {
        fn new() -> Self {
            RankBinding {
                requested: Mutex::new(Vec::new()),
            }
        }
    }

    impl Binding for RankBinding {
        type Op = ();
        type Val = u8;

        fn consistency_levels(&self) -> LevelSet {
            LevelSet::of(&[WEAK, CAUSAL, STRONG])
        }

        fn submit(&self, _op: (), levels: &[ConsistencyLevel], upcall: Upcall<u8>) {
            self.requested.lock().push(levels.to_vec());
            for l in levels {
                upcall.deliver(l.rank(), *l);
            }
        }
    }

    #[test]
    fn invoke_weak_closes_at_weakest() {
        let client = Client::new(RankBinding::new());
        let c = client.invoke_weak(());
        assert_eq!(c.state(), State::Final);
        let v = c.final_view().unwrap();
        assert_eq!(v.level, WEAK);
        assert_eq!(v.value, WEAK.rank());
        assert_eq!(client.binding().requested.lock()[0], vec![WEAK]);
    }

    #[test]
    fn invoke_strong_closes_at_strongest() {
        let client = Client::new(RankBinding::new());
        let c = client.invoke_strong(());
        let v = c.final_view().unwrap();
        assert_eq!(v.level, STRONG);
        assert_eq!(client.binding().requested.lock()[0], vec![STRONG]);
    }

    #[test]
    fn invoke_at_closes_at_any_advertised_level() {
        let client = Client::new(RankBinding::new());
        let c = client.invoke_at((), CAUSAL);
        assert_eq!(c.state(), State::Final);
        let v = c.final_view().unwrap();
        assert_eq!(v.level, CAUSAL);
        assert_eq!(v.value, CAUSAL.rank());
        assert!(c.preliminary_views().is_empty());
        assert_eq!(client.binding().requested.lock()[0], vec![CAUSAL]);
    }

    #[test]
    fn invoke_at_unadvertised_level_fails() {
        let client = Client::new(RankBinding::new());
        let c = client.invoke_at((), ConsistencyLevel::UPDATE);
        assert_eq!(
            c.error(),
            Some(Error::UnsupportedLevel(ConsistencyLevel::UPDATE))
        );
        assert!(client.binding().requested.lock().is_empty());
    }

    #[test]
    fn invoke_delivers_all_levels_incrementally() {
        let client = Client::new(RankBinding::new());
        let c = client.invoke(());
        assert_eq!(c.state(), State::Final);
        let prelims = c.preliminary_views();
        assert_eq!(prelims.len(), 2);
        assert_eq!(prelims[0].level, WEAK);
        assert_eq!(prelims[1].level, CAUSAL);
        assert_eq!(c.final_view().unwrap().level, STRONG);
    }

    #[test]
    fn invoke_with_subset_skips_extraneous_levels() {
        let client = Client::new(RankBinding::new());
        let c = client.invoke_with((), &LevelSelection::only(&[STRONG, WEAK]));
        assert_eq!(c.preliminary_views().len(), 1);
        assert_eq!(
            client.binding().requested.lock()[0],
            vec![WEAK, STRONG],
            "causal must not be requested from the binding"
        );
        let _ = c;
    }

    #[test]
    fn invoke_with_unknown_level_fails() {
        let client = Client::new(RankBinding::new());
        let bogus = ConsistencyLevel::register("client-bogus", 99).unwrap();
        let c = client.invoke_with((), &LevelSelection::only(&[bogus]));
        assert_eq!(c.error(), Some(Error::UnsupportedLevel(bogus)));
    }
}
