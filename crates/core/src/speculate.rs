//! The `speculate` combinator (Listing 3 of the paper).
//!
//! `speculate` captures the canonical ICG pattern: run dependent work on
//! each preliminary view, and
//!
//! - if the final view **matches** a preliminary one (the common case), the
//!   derived Correctable closes as soon as both the final view and the
//!   speculative work are available — hiding the latency of strong
//!   consistency behind the speculation;
//! - if the final view **diverges** (misspeculation), the optional abort
//!   function undoes side effects and the speculation function re-executes
//!   on the correct input before the derived Correctable closes.
//!
//! The speculation function may itself be asynchronous (e.g. prefetching
//! dependent objects from storage): it returns a [`Correctable`] of the
//! derived result. The synchronous convenience wrapper lifts a plain
//! function over [`Correctable::ready`].

use std::sync::Arc;

use parking_lot::Mutex;

use crate::correctable::{Correctable, Handle};
use crate::error::Error;
use crate::level::ConsistencyLevel;
use crate::view::View;

type SpecFn<T, U> = Box<dyn FnMut(&T) -> Correctable<U> + Send>;
type SyncSpecFn<T, U> = Box<dyn FnMut(&T) -> U + Send>;
type AbortFn<T> = Box<dyn FnMut(&T) + Send>;

/// The speculation function: asynchronous (returns a [`Correctable`] of
/// the derived result) or synchronous (the fast path — runs inline, no
/// intermediate Correctable or completion callbacks are allocated).
enum Spec<T, U> {
    Async(SpecFn<T, U>),
    Sync(SyncSpecFn<T, U>),
}

struct SpecState<T, U> {
    /// Input of the speculation currently in flight (or completed).
    cur_input: Option<T>,
    /// Result view of the completed speculation for `cur_input`.
    cur_done: Option<View<U>>,
    /// The underlying operation's final view, once it arrives.
    final_view: Option<View<T>>,
    /// Bumped whenever the speculation input changes; stale completions
    /// compare epochs and drop themselves.
    epoch: u64,
    spec: Spec<T, U>,
    abort: AbortFn<T>,
    out: Handle<U>,
    closed: bool,
}

/// Statistics about speculation outcomes, exposed for tests and harnesses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpeculationStats {
    /// Speculations whose input was confirmed by the final view.
    pub confirmed: u64,
    /// Speculations aborted because a newer view diverged.
    pub misspeculated: u64,
}

impl<T: Clone + PartialEq + Send + 'static> Correctable<T> {
    /// Applies an asynchronous speculation function to every distinct view
    /// and returns a Correctable of the speculation result.
    ///
    /// `abort` runs whenever in-flight speculative work is invalidated by a
    /// newer, different view (including the divergence of the final view) —
    /// use it to undo externalized side effects.
    pub fn speculate_async<U, F, A>(&self, spec: F, abort: A) -> Correctable<U>
    where
        U: Clone + Send + 'static,
        F: FnMut(&T) -> Correctable<U> + Send + 'static,
        A: FnMut(&T) + Send + 'static,
    {
        self.speculate_impl(Spec::Async(Box::new(spec)), Box::new(abort))
    }

    fn speculate_impl<U>(&self, spec: Spec<T, U>, abort: AbortFn<T>) -> Correctable<U>
    where
        U: Clone + Send + 'static,
    {
        let (out, out_handle) = Correctable::<U>::pending();
        let state = Arc::new(Mutex::new(SpecState {
            cur_input: None,
            cur_done: None,
            final_view: None,
            epoch: 0,
            spec,
            abort,
            out: out_handle,
            closed: false,
        }));

        let st_u = Arc::clone(&state);
        self.on_update(move |v: &View<T>| on_view(&st_u, v, false));
        let st_f = Arc::clone(&state);
        self.on_final(move |v: &View<T>| on_view(&st_f, v, true));
        let st_e = Arc::clone(&state);
        self.on_error(move |e: &Error| {
            let (out, aborted) = {
                let mut g = st_e.lock();
                if g.closed {
                    return;
                }
                g.closed = true;
                let aborted = if g.cur_done.is_none() {
                    g.cur_input.take()
                } else {
                    None
                };
                (g.out.clone(), aborted)
            };
            // Undo in-flight speculative work before surfacing the error.
            if let Some(input) = aborted {
                run_abort(&st_e, &input);
            }
            let _ = out.fail(e.clone());
        });
        out
    }

    /// Synchronous speculation: Listing 3's
    /// `invoke(read(...)).speculate(speculationFunc)`.
    ///
    /// The function runs inline on each distinct view; no intermediate
    /// Correctable is allocated per speculation.
    pub fn speculate<U, F>(&self, spec: F) -> Correctable<U>
    where
        U: Clone + Send + 'static,
        F: FnMut(&T) -> U + Send + 'static,
    {
        self.speculate_impl(Spec::Sync(Box::new(spec)), Box::new(|_| {}))
    }

    /// Synchronous speculation with an abort function, mirroring
    /// `speculate(speculationFunc, abortFunc)`.
    pub fn speculate_with_abort<U, F, A>(&self, spec: F, abort: A) -> Correctable<U>
    where
        U: Clone + Send + 'static,
        F: FnMut(&T) -> U + Send + 'static,
        A: FnMut(&T) + Send + 'static,
    {
        self.speculate_impl(Spec::Sync(Box::new(spec)), Box::new(abort))
    }
}

/// Runs the user abort function with the state lock released, so it may
/// freely interact with other Correctables.
fn run_abort<T, U>(state: &Arc<Mutex<SpecState<T, U>>>, input: &T) {
    let mut abort = {
        let mut g = state.lock();
        std::mem::replace(&mut g.abort, Box::new(|_| {}))
    };
    abort(input);
    let mut g = state.lock();
    g.abort = abort;
}

/// Handles one incoming view (preliminary or final).
///
/// Locking discipline: user code (`spec`, `abort`, handle operations) never
/// runs while the state lock is held; the `epoch` field detects staleness
/// across the unlock/relock gaps.
fn on_view<T, U>(state: &Arc<Mutex<SpecState<T, U>>>, v: &View<T>, is_final: bool)
where
    T: Clone + PartialEq + Send + 'static,
    U: Clone + Send + 'static,
{
    enum Action<T, U> {
        Nothing,
        /// Close the output now with the completed speculation result.
        Close(Handle<U>, View<U>, ConsistencyLevel),
        /// Launch (or relaunch) the speculation for this input.
        Launch {
            aborted: Option<T>,
            input: T,
            epoch: u64,
        },
    }

    let action: Action<T, U> = {
        let mut g = state.lock();
        if g.closed {
            Action::Nothing
        } else if is_final {
            g.final_view = Some(v.clone());
            if g.cur_input.as_ref() == Some(&v.value) {
                // Speculation input confirmed by the final view.
                match g.cur_done.clone() {
                    Some(done) => {
                        g.closed = true;
                        Action::Close(g.out.clone(), done, v.level)
                    }
                    // Work still in flight; its completion closes us.
                    None => Action::Nothing,
                }
            } else {
                // Misspeculation (or no preliminary at all): redo on the
                // final input.
                let aborted = g.cur_input.take();
                g.epoch += 1;
                g.cur_input = Some(v.value.clone());
                g.cur_done = None;
                Action::Launch {
                    aborted,
                    input: v.value.clone(),
                    epoch: g.epoch,
                }
            }
        } else if g.cur_input.as_ref() == Some(&v.value) {
            // Same value as the current speculation; nothing to redo.
            Action::Nothing
        } else {
            let aborted = g.cur_input.take();
            g.epoch += 1;
            g.cur_input = Some(v.value.clone());
            g.cur_done = None;
            Action::Launch {
                aborted,
                input: v.value.clone(),
                epoch: g.epoch,
            }
        }
    };

    match action {
        Action::Nothing => {}
        Action::Close(out, done, level) => {
            let _ = out.close(done.value, level);
        }
        Action::Launch {
            aborted,
            input,
            epoch,
        } => {
            if let Some(old) = aborted {
                run_abort(state, &old);
            }
            // Take the spec function out so user code runs unlocked.
            let spec = {
                let mut g = state.lock();
                std::mem::replace(
                    &mut g.spec,
                    Spec::Sync(Box::new(|_| unreachable!("spec in flight"))),
                )
            };
            match spec {
                Spec::Sync(mut f) => {
                    // Fast path: the result is available as soon as the
                    // function returns; complete the bookkeeping directly
                    // instead of routing it through a ready Correctable.
                    let value = f(&input);
                    let act = {
                        let mut g = state.lock();
                        g.spec = Spec::Sync(f);
                        if g.closed || g.epoch != epoch {
                            None
                        } else {
                            let done = View::new(value, ConsistencyLevel::STRONG);
                            g.cur_done = Some(done.clone());
                            match g.final_view.clone() {
                                Some(fv) if g.cur_input.as_ref() == Some(&fv.value) => {
                                    g.closed = true;
                                    Some((g.out.clone(), done, fv.level))
                                }
                                _ => None,
                            }
                        }
                    };
                    if let Some((out, done, level)) = act {
                        let _ = out.close(done.value, level);
                    }
                }
                Spec::Async(mut f) => {
                    let result = f(&input);
                    {
                        let mut g = state.lock();
                        g.spec = Spec::Async(f);
                    }
                    let st_done = Arc::clone(state);
                    result.on_final(move |u: &View<U>| {
                        let act = {
                            let mut g = st_done.lock();
                            if g.closed || g.epoch != epoch {
                                None
                            } else {
                                g.cur_done = Some(u.clone());
                                match g.final_view.clone() {
                                    Some(fv) if g.cur_input.as_ref() == Some(&fv.value) => {
                                        g.closed = true;
                                        Some((g.out.clone(), u.clone(), fv.level))
                                    }
                                    _ => None,
                                }
                            }
                        };
                        if let Some((out, done, level)) = act {
                            let _ = out.close(done.value, level);
                        }
                    });
                    let st_err = Arc::clone(state);
                    result.on_error(move |e: &Error| {
                        let out = {
                            let mut g = st_err.lock();
                            if g.closed || g.epoch != epoch {
                                return;
                            }
                            g.closed = true;
                            g.out.clone()
                        };
                        let _ = out.fail(e.clone());
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc as StdArc;

    use crate::correctable::State;
    use crate::level::ConsistencyLevel;
    const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;
    const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
    #[test]
    fn confirmed_speculation_closes_with_spec_result() {
        let (c, h) = Correctable::<i32>::pending();
        let calls = StdArc::new(AtomicU64::new(0));
        let calls2 = StdArc::clone(&calls);
        let out = c.speculate(move |x| {
            calls2.fetch_add(1, Ordering::SeqCst);
            x * 10
        });
        h.update(4, WEAK).unwrap();
        assert_eq!(out.state(), State::Updating);
        h.close(4, STRONG).unwrap();
        let v = out.final_view().expect("closed");
        assert_eq!(v.value, 40);
        assert_eq!(v.level, STRONG);
        // The speculation ran exactly once: no redo on confirmation.
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn misspeculation_reexecutes_and_aborts() {
        let (c, h) = Correctable::<i32>::pending();
        let aborted = StdArc::new(Mutex::new(Vec::<i32>::new()));
        let ab = StdArc::clone(&aborted);
        let out = c.speculate_with_abort(|x| x * 10, move |bad| ab.lock().push(*bad));
        h.update(4, WEAK).unwrap();
        h.close(5, STRONG).unwrap();
        assert_eq!(out.final_view().unwrap().value, 50);
        assert_eq!(*aborted.lock(), vec![4]);
    }

    #[test]
    fn no_preliminary_still_produces_result() {
        let (c, h) = Correctable::<i32>::pending();
        let out = c.speculate(|x| x + 1);
        h.close(9, STRONG).unwrap();
        assert_eq!(out.final_view().unwrap().value, 10);
    }

    #[test]
    fn duplicate_preliminaries_do_not_respeculate() {
        let (c, h) = Correctable::<i32>::pending();
        let calls = StdArc::new(AtomicU64::new(0));
        let calls2 = StdArc::clone(&calls);
        let out = c.speculate(move |x| {
            calls2.fetch_add(1, Ordering::SeqCst);
            *x
        });
        h.update(7, WEAK).unwrap();
        h.update(7, WEAK).unwrap();
        h.close(7, STRONG).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(out.final_view().unwrap().value, 7);
    }

    #[test]
    fn async_speculation_closes_after_both_complete() {
        let (c, h) = Correctable::<i32>::pending();
        // The speculative work completes only when we close `work_h`.
        let pending: StdArc<Mutex<Vec<Handle<i32>>>> = StdArc::new(Mutex::new(Vec::new()));
        let p2 = StdArc::clone(&pending);
        let out = c.speculate_async(
            move |x| {
                let (w, wh) = Correctable::<i32>::pending();
                let seed = *x;
                p2.lock().push(wh);
                let _ = seed;
                w
            },
            |_| {},
        );
        h.update(1, WEAK).unwrap();
        h.close(1, STRONG).unwrap();
        // Final view arrived, but the speculative work is still running.
        assert_eq!(out.state(), State::Updating);
        let wh = pending.lock().pop().unwrap();
        wh.close(111, STRONG).unwrap();
        assert_eq!(out.final_view().unwrap().value, 111);
    }

    #[test]
    fn async_speculation_completing_before_final_closes_on_final() {
        let (c, h) = Correctable::<i32>::pending();
        let out = c.speculate_async(|x| Correctable::ready(x * 2), |_| {});
        h.update(3, WEAK).unwrap();
        assert_eq!(out.state(), State::Updating);
        h.close(3, STRONG).unwrap();
        assert_eq!(out.final_view().unwrap().value, 6);
    }

    #[test]
    fn stale_async_result_is_ignored() {
        type LaunchLog = StdArc<Mutex<Vec<(i32, Handle<i32>)>>>;
        let (c, h) = Correctable::<i32>::pending();
        let handles: LaunchLog = StdArc::new(Mutex::new(Vec::new()));
        let h2 = StdArc::clone(&handles);
        let out = c.speculate_async(
            move |x| {
                let (w, wh) = Correctable::<i32>::pending();
                h2.lock().push((*x, wh));
                w
            },
            |_| {},
        );
        h.update(1, WEAK).unwrap();
        h.close(2, STRONG).unwrap();
        // Finish the stale speculation (input 1) after the relaunch (input 2).
        let mut hs = handles.lock();
        assert_eq!(hs.len(), 2);
        let (stale_in, stale_h) = hs.remove(0);
        let (fresh_in, fresh_h) = hs.remove(0);
        drop(hs);
        assert_eq!((stale_in, fresh_in), (1, 2));
        stale_h.close(-1, STRONG).unwrap();
        assert_eq!(out.state(), State::Updating, "stale result must not close");
        fresh_h.close(22, STRONG).unwrap();
        assert_eq!(out.final_view().unwrap().value, 22);
    }

    #[test]
    fn underlying_error_propagates_and_aborts() {
        let (c, h) = Correctable::<i32>::pending();
        let aborted = StdArc::new(Mutex::new(Vec::<i32>::new()));
        let ab = StdArc::clone(&aborted);
        let out = c.speculate_async(
            |_| Correctable::<i32>::pending().0, // never completes
            move |bad| ab.lock().push(*bad),
        );
        h.update(5, WEAK).unwrap();
        h.fail(Error::Timeout).unwrap();
        assert_eq!(out.state(), State::Error);
        assert_eq!(out.error(), Some(Error::Timeout));
        assert_eq!(*aborted.lock(), vec![5]);
    }

    #[test]
    fn spec_work_error_propagates() {
        let (c, h) = Correctable::<i32>::pending();
        let out = c.speculate_async(
            |_| Correctable::<i32>::failed(Error::Storage("boom".into())),
            |_| {},
        );
        h.update(5, WEAK).unwrap();
        assert_eq!(out.state(), State::Error);
        assert_eq!(out.error(), Some(Error::Storage("boom".into())));
    }

    #[test]
    fn changing_preliminaries_each_respeculate() {
        let (c, h) = Correctable::<i32>::pending();
        let calls = StdArc::new(AtomicU64::new(0));
        let aborts = StdArc::new(AtomicU64::new(0));
        let (c2, a2) = (StdArc::clone(&calls), StdArc::clone(&aborts));
        let out = c.speculate_with_abort(
            move |x| {
                c2.fetch_add(1, Ordering::SeqCst);
                *x
            },
            move |_| {
                a2.fetch_add(1, Ordering::SeqCst);
            },
        );
        h.update(1, WEAK).unwrap();
        h.update(2, WEAK).unwrap();
        h.close(2, STRONG).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(aborts.load(Ordering::SeqCst), 1);
        assert_eq!(out.final_view().unwrap().value, 2);
    }
}
