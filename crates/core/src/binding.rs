//! The binding API (§5.1 of the paper): the boundary between the
//! consistency-based Correctables interface and storage-specific protocols.
//!
//! A binding encapsulates (1) the configuration of a storage stack, (2) the
//! consistency levels it offers, and (3) every storage-specific protocol.
//! The paper's API is two functions — `consistencyLevels()` and
//! `submitOperation(op, consLevels, callback)` — mirrored here as
//! [`Binding::consistency_levels`] and [`Binding::submit`]. The callback
//! is an [`Upcall`]: the binding calls [`Upcall::deliver`] once per
//! requested level, and the library routes each delivery into the right
//! Correctable transition (update for intermediate levels, close for the
//! strongest requested one).

use crate::correctable::Handle;
use crate::error::Error;
use crate::level::ConsistencyLevel;

/// Storage-side interface implemented once per storage stack.
pub trait Binding {
    /// The operation type this storage accepts (reads, writes, queue ops…).
    type Op;
    /// The result type of operations.
    type Val: Clone + Send + 'static;

    /// The consistency levels this binding offers, weakest first.
    fn consistency_levels(&self) -> Vec<ConsistencyLevel>;

    /// Executes `op`, delivering one result per level in `levels`
    /// (weakest-first) through `upcall`.
    ///
    /// Implementations must eventually either deliver the strongest
    /// requested level or fail the upcall; they should skip levels not in
    /// `levels` to save work (§3.2's optimization argument).
    fn submit(&self, op: Self::Op, levels: &[ConsistencyLevel], upcall: Upcall<Self::Val>);
}

/// The callback surface handed to a binding for one operation.
pub struct Upcall<T> {
    handle: Handle<T>,
    strongest: ConsistencyLevel,
}

impl<T: Clone + Send + 'static> Upcall<T> {
    /// Creates an upcall that closes its Correctable at `strongest`.
    pub fn new(handle: Handle<T>, strongest: ConsistencyLevel) -> Self {
        Upcall { handle, strongest }
    }

    /// Delivers one view. A view at (or above) the strongest requested
    /// level closes the Correctable; weaker views are preliminary updates.
    ///
    /// Deliveries after the close are ignored (e.g. a slow weak response
    /// racing a fast strong one), matching the paper's state machine.
    pub fn deliver(&self, value: T, level: ConsistencyLevel) {
        if level.at_least(self.strongest) {
            let _ = self.handle.close(value, level);
        } else {
            let _ = self.handle.update(value, level);
        }
    }

    /// Fails the operation; ignored if already closed.
    pub fn fail(&self, err: Error) {
        let _ = self.handle.fail(err);
    }

    /// The strongest level this upcall was configured with.
    pub fn strongest(&self) -> ConsistencyLevel {
        self.strongest
    }
}

impl<T> Clone for Upcall<T> {
    fn clone(&self) -> Self {
        Upcall {
            handle: self.handle.clone(),
            strongest: self.strongest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correctable::{Correctable, State};
    use crate::level::ConsistencyLevel::{Strong, Weak};

    #[test]
    fn deliver_routes_update_vs_close() {
        let (c, h) = Correctable::<i32>::pending();
        let up = Upcall::new(h, Strong);
        up.deliver(1, Weak);
        assert_eq!(c.state(), State::Updating);
        up.deliver(2, Strong);
        assert_eq!(c.state(), State::Final);
        assert_eq!(c.final_view().unwrap().value, 2);
    }

    #[test]
    fn weak_only_invocation_closes_on_weak() {
        let (c, h) = Correctable::<i32>::pending();
        let up = Upcall::new(h, Weak);
        up.deliver(1, Weak);
        assert_eq!(c.state(), State::Final);
        assert_eq!(c.final_view().unwrap().level, Weak);
    }

    #[test]
    fn late_deliveries_are_ignored() {
        let (c, h) = Correctable::<i32>::pending();
        let up = Upcall::new(h, Weak);
        up.deliver(1, Weak);
        up.deliver(2, Strong);
        up.fail(Error::Timeout);
        assert_eq!(c.final_view().unwrap().value, 1);
    }

    #[test]
    fn fail_closes_exceptionally() {
        let (c, h) = Correctable::<i32>::pending();
        let up = Upcall::new(h, Strong);
        up.fail(Error::Unavailable("no quorum".into()));
        assert_eq!(c.state(), State::Error);
    }
}
