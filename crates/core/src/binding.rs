//! The binding API (§5.1 of the paper): the boundary between the
//! consistency-based Correctables interface and storage-specific protocols.
//!
//! A binding encapsulates (1) the configuration of a storage stack, (2) the
//! consistency levels it offers, and (3) every storage-specific protocol.
//! The paper's API is two functions — `consistencyLevels()` and
//! `submitOperation(op, consLevels, callback)` — mirrored here as
//! [`Binding::consistency_levels`] and [`Binding::submit`]. The callback
//! is an [`Upcall`]: the binding calls [`Upcall::deliver`] once per
//! requested level, and the library routes each delivery into the right
//! Correctable transition (update for intermediate levels, close for the
//! strongest requested one).

use std::sync::Arc;

use crate::correctable::Handle;
use crate::error::Error;
use crate::level::{ConsistencyLevel, LevelSet};

/// Identifies one replicated object within a multi-object store.
///
/// Single-object bindings (one counter, one queue, one register) never
/// need this; a multi-object router (e.g. the `icg-shard` crate) uses it
/// to place each operation on the shard owning the object.
#[derive(Clone, Copy, Debug, Eq, Hash, Ord, PartialEq, PartialOrd)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Derives an id from arbitrary bytes (FNV-1a), for string-keyed ops.
    pub fn from_bytes(bytes: &[u8]) -> ObjectId {
        const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut hash = OFFSET;
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(PRIME);
        }
        ObjectId(hash)
    }
}

/// Operations that address one replicated object by key.
///
/// This is the adapter between a single-object [`Binding`] and a
/// multi-object routing layer: any binding whose op type reports which
/// object it touches can be scaled out horizontally by a router that
/// maps [`ObjectId`]s to shards.
pub trait KeyedOp {
    /// The object this operation touches.
    fn object_id(&self) -> ObjectId;
}

/// Storage-side interface implemented once per storage stack.
pub trait Binding {
    /// The operation type this storage accepts (reads, writes, queue ops…).
    type Op;
    /// The result type of operations.
    type Val: Clone + Send + 'static;

    /// The consistency levels this binding offers, as a validated,
    /// totally-ordered [`LevelSet`] (weakest first).
    fn consistency_levels(&self) -> LevelSet;

    /// Executes `op`, delivering one result per level in `levels`
    /// (weakest-first) through `upcall`.
    ///
    /// Implementations must eventually either deliver the strongest
    /// requested level or fail the upcall; they should skip levels not in
    /// `levels` to save work (§3.2's optimization argument).
    fn submit(&self, op: Self::Op, levels: &[ConsistencyLevel], upcall: Upcall<Self::Val>);
}

/// A set of consistency levels represented as a bitmask over ranks —
/// copyable and allocation-free, sized for the full `u8` rank space.
#[derive(Clone, Copy, Debug)]
struct RankMask([u64; 4]);

impl RankMask {
    const ALL: RankMask = RankMask([u64::MAX; 4]);

    fn of(levels: &[ConsistencyLevel]) -> RankMask {
        let mut mask = [0u64; 4];
        for l in levels {
            let r = l.rank();
            mask[usize::from(r >> 6)] |= 1u64 << (r & 63);
        }
        RankMask(mask)
    }

    fn contains(&self, level: ConsistencyLevel) -> bool {
        let r = level.rank();
        self.0[usize::from(r >> 6)] & (1u64 << (r & 63)) != 0
    }
}

/// Observes the deliveries an [`Upcall`] *accepts* — after level filtering
/// and close-once arbitration — without interposing another Correctable.
///
/// This is the hook the recording layer ([`crate::record::RecordingBinding`])
/// attaches: the observer sees exactly the client-visible stream, and
/// deliveries the upcall drops (non-requested levels, post-close stragglers)
/// are never cloned for it.
///
/// Ordering contract: the observer is notified *after* the state machine
/// accepts a delivery, outside its internal lock. When a binding delivers
/// on one invocation from a single thread (every binding in this
/// workspace does), observer notifications arrive in accepted order; a
/// binding delivering concurrently from several threads must serialize
/// its deliveries per invocation if it needs the recorded order to match
/// the accepted order.
pub trait DeliveryObserver<T>: Send + Sync {
    /// An accepted view delivery; `closing` marks the final view.
    fn on_view(&self, value: T, level: ConsistencyLevel, closing: bool);

    /// An accepted exceptional close.
    fn on_fail(&self, error: &Error);
}

/// Fans one accepted delivery out to two observers (nested recording).
struct PairObserver<T>(Arc<dyn DeliveryObserver<T>>, Arc<dyn DeliveryObserver<T>>);

impl<T: Clone> DeliveryObserver<T> for PairObserver<T> {
    fn on_view(&self, value: T, level: ConsistencyLevel, closing: bool) {
        self.0.on_view(value.clone(), level, closing);
        self.1.on_view(value, level, closing);
    }

    fn on_fail(&self, error: &Error) {
        self.0.on_fail(error);
        self.1.on_fail(error);
    }
}

/// The callback surface handed to a binding for one operation.
pub struct Upcall<T> {
    handle: Handle<T>,
    strongest: ConsistencyLevel,
    /// Ranks of the requested levels, cached once at construction.
    /// Deliveries below `strongest` at a rank outside this set are dropped
    /// instead of surfacing as spurious preliminary views (§3.2's
    /// level-skipping contract).
    requested: RankMask,
    /// Optional observer of accepted deliveries (the recording layer).
    observer: Option<Arc<dyn DeliveryObserver<T>>>,
}

impl<T: Clone + Send + 'static> Upcall<T> {
    /// Creates an upcall that closes its Correctable at `strongest` and
    /// accepts preliminary views at every weaker level.
    pub fn new(handle: Handle<T>, strongest: ConsistencyLevel) -> Self {
        Upcall {
            handle,
            strongest,
            requested: RankMask::ALL,
            observer: None,
        }
    }

    /// Creates an upcall restricted to `levels` (weakest-first, as passed
    /// to [`Binding::submit`]): it closes at the strongest of `levels` and
    /// drops deliveries at weaker levels whose rank is not in the set, so
    /// a binding that over-delivers cannot produce spurious `on_update`s.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn for_levels(handle: Handle<T>, levels: &[ConsistencyLevel]) -> Self {
        let strongest = *levels
            .iter()
            .max()
            .expect("upcall needs at least one level");
        Upcall {
            handle,
            strongest,
            requested: RankMask::of(levels),
            observer: None,
        }
    }

    /// Attaches an observer of accepted deliveries. If an observer is
    /// already attached (nested recording layers), both are notified.
    pub fn with_observer(mut self, observer: Arc<dyn DeliveryObserver<T>>) -> Self {
        self.observer = Some(match self.observer.take() {
            None => observer,
            Some(prev) => Arc::new(PairObserver(prev, observer)),
        });
        self
    }

    /// Delivers one view. A view at (or above) the strongest requested
    /// level closes the Correctable; weaker views are preliminary updates.
    ///
    /// Deliveries after the close are ignored (e.g. a slow weak response
    /// racing a fast strong one), matching the paper's state machine.
    /// When the upcall was built with [`Upcall::for_levels`], preliminary
    /// deliveries at non-requested levels are ignored as well. Dropped
    /// deliveries never reach the observer and are never cloned for it.
    pub fn deliver(&self, value: T, level: ConsistencyLevel) {
        let closing = level.at_least(self.strongest);
        if !closing && !self.requested.contains(level) {
            return;
        }
        match &self.observer {
            None => {
                if closing {
                    let _ = self.handle.close(value, level);
                } else {
                    let _ = self.handle.update(value, level);
                }
            }
            Some(obs) => {
                // One clone, skipped for level-filtered deliveries; the
                // observer records it iff the state machine accepts.
                let copy = value.clone();
                let accepted = if closing {
                    self.handle.close(value, level).is_ok()
                } else {
                    self.handle.update(value, level).is_ok()
                };
                if accepted {
                    obs.on_view(copy, level, closing);
                }
            }
        }
    }

    /// Fails the operation; ignored if already closed.
    pub fn fail(&self, err: Error) {
        match &self.observer {
            None => {
                let _ = self.handle.fail(err);
            }
            Some(obs) => {
                if self.handle.fail(err.clone()).is_ok() {
                    obs.on_fail(&err);
                }
            }
        }
    }

    /// The strongest level this upcall was configured with.
    pub fn strongest(&self) -> ConsistencyLevel {
        self.strongest
    }
}

impl<T> Clone for Upcall<T> {
    fn clone(&self) -> Self {
        Upcall {
            handle: self.handle.clone(),
            strongest: self.strongest,
            requested: self.requested,
            observer: self.observer.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correctable::{Correctable, State};
    use crate::level::ConsistencyLevel;
    const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;
    const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
    #[test]
    fn deliver_routes_update_vs_close() {
        let (c, h) = Correctable::<i32>::pending();
        let up = Upcall::new(h, STRONG);
        up.deliver(1, WEAK);
        assert_eq!(c.state(), State::Updating);
        up.deliver(2, STRONG);
        assert_eq!(c.state(), State::Final);
        assert_eq!(c.final_view().unwrap().value, 2);
    }

    #[test]
    fn weak_only_invocation_closes_on_weak() {
        let (c, h) = Correctable::<i32>::pending();
        let up = Upcall::new(h, WEAK);
        up.deliver(1, WEAK);
        assert_eq!(c.state(), State::Final);
        assert_eq!(c.final_view().unwrap().level, WEAK);
    }

    #[test]
    fn late_deliveries_are_ignored() {
        let (c, h) = Correctable::<i32>::pending();
        let up = Upcall::new(h, WEAK);
        up.deliver(1, WEAK);
        up.deliver(2, STRONG);
        up.fail(Error::Timeout);
        assert_eq!(c.final_view().unwrap().value, 1);
    }

    #[test]
    fn fail_closes_exceptionally() {
        let (c, h) = Correctable::<i32>::pending();
        let up = Upcall::new(h, STRONG);
        up.fail(Error::Unavailable("no quorum".into()));
        assert_eq!(c.state(), State::Error);
    }

    #[test]
    fn non_requested_level_is_skipped() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;

        let (c, h) = Correctable::<i32>::pending();
        let updates = StdArc::new(AtomicUsize::new(0));
        let n = StdArc::clone(&updates);
        c.on_update(move |_| {
            n.fetch_add(1, Ordering::SeqCst);
        });
        let up = Upcall::for_levels(h, &[WEAK, STRONG]);
        // A binding over-delivering at a level the client never asked for
        // must not surface a spurious preliminary view.
        up.deliver(1, ConsistencyLevel::CAUSAL);
        assert_eq!(c.state(), State::Updating);
        assert_eq!(updates.load(Ordering::SeqCst), 0);
        assert!(c.preliminary_views().is_empty());
        // Requested levels still flow through normally.
        up.deliver(2, WEAK);
        assert_eq!(updates.load(Ordering::SeqCst), 1);
        up.deliver(3, STRONG);
        assert_eq!(c.final_view().unwrap().value, 3);
    }

    #[test]
    fn at_or_above_strongest_closes_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;

        let (c, h) = Correctable::<i32>::pending();
        let finals = StdArc::new(AtomicUsize::new(0));
        let n = StdArc::clone(&finals);
        c.on_final(move |_| {
            n.fetch_add(1, Ordering::SeqCst);
        });
        let up = Upcall::for_levels(h, &[WEAK, STRONG]);
        let above = ConsistencyLevel::register("stronger-than-asked", 99).unwrap();
        // A level above the strongest requested closes; later deliveries
        // at or above strongest are late and ignored.
        up.deliver(1, above);
        up.deliver(2, STRONG);
        up.deliver(3, above);
        assert_eq!(c.state(), State::Final);
        assert_eq!(finals.load(Ordering::SeqCst), 1);
        assert_eq!(c.final_view().unwrap().value, 1);
        assert!(c.preliminary_views().is_empty());
    }

    #[test]
    fn object_id_from_bytes_is_stable() {
        let a = ObjectId::from_bytes(b"user:42");
        let b = ObjectId::from_bytes(b"user:42");
        let c = ObjectId::from_bytes(b"user:43");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
