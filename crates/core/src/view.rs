//! Views: the per-level results an operation delivers incrementally.

use crate::level::ConsistencyLevel;

/// One incremental result of an operation, tagged with the consistency
/// level it satisfies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct View<T> {
    /// The operation result under this view's consistency level.
    pub value: T,
    /// The guarantee this view satisfies.
    pub level: ConsistencyLevel,
}

impl<T> View<T> {
    /// Creates a view.
    pub fn new(value: T, level: ConsistencyLevel) -> Self {
        View { value, level }
    }

    /// Maps the value, preserving the level.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> View<U> {
        View {
            value: f(self.value),
            level: self.level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_level() {
        let v = View::new(21, ConsistencyLevel::WEAK);
        let w = v.map(|x| x * 2);
        assert_eq!(w.value, 42);
        assert_eq!(w.level, ConsistencyLevel::WEAK);
    }
}
