//! Consistency levels: the vocabulary shared between applications and
//! storage bindings.
//!
//! The paper's API is "centered around consistency levels" (§3.2): an
//! application asks for *weak* or *strong* (or everything in between) and
//! the binding maps each level onto a storage-specific mechanism (quorum
//! size, cache access, leader read, …). Levels are totally ordered from
//! weakest to strongest by their [`rank`](ConsistencyLevel::rank).

use std::cmp::Ordering;
use std::fmt;

/// A consistency guarantee an operation result can satisfy.
///
/// The well-known levels cover the bindings shipped in this repository;
/// `Custom` lets a binding expose anything else (e.g. per-confirmation
/// levels of a blockchain binding) while keeping the total order.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum ConsistencyLevel {
    /// Client-local cache: fastest, no freshness guarantee at all.
    Cache,
    /// Weak / eventual consistency (e.g. a single-replica read).
    Weak,
    /// Causal consistency.
    Causal,
    /// Strong consistency (linearizability or the strongest the store has).
    Strong,
    /// A binding-defined level with an explicit rank and name.
    Custom {
        /// Position in the weak-to-strong order (higher is stronger).
        rank: u8,
        /// Human-readable label.
        name: &'static str,
    },
}

impl ConsistencyLevel {
    /// Position of this level in the weak-to-strong total order.
    pub fn rank(&self) -> u8 {
        match self {
            ConsistencyLevel::Cache => 0,
            ConsistencyLevel::Weak => 10,
            ConsistencyLevel::Causal => 20,
            ConsistencyLevel::Strong => 40,
            ConsistencyLevel::Custom { rank, .. } => *rank,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ConsistencyLevel::Cache => "cache",
            ConsistencyLevel::Weak => "weak",
            ConsistencyLevel::Causal => "causal",
            ConsistencyLevel::Strong => "strong",
            ConsistencyLevel::Custom { name, .. } => name,
        }
    }

    /// Whether this level is at least as strong as `other`.
    pub fn at_least(&self, other: ConsistencyLevel) -> bool {
        self.rank() >= other.rank()
    }
}

impl PartialOrd for ConsistencyLevel {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ConsistencyLevel {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl fmt::Display for ConsistencyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which of a binding's levels an `invoke` should deliver.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum LevelSelection {
    /// Deliver every level the binding supports (the default of `invoke`).
    #[default]
    All,
    /// Deliver only the listed levels (must be a subset of the binding's).
    Only(Vec<ConsistencyLevel>),
}

impl LevelSelection {
    /// Resolves the selection against a binding's advertised levels,
    /// returning the requested levels sorted weakest-first.
    ///
    /// # Errors
    ///
    /// Returns the offending level if it is not advertised by the binding.
    pub fn resolve(
        &self,
        available: &[ConsistencyLevel],
    ) -> Result<Vec<ConsistencyLevel>, ConsistencyLevel> {
        let mut chosen = match self {
            LevelSelection::All => available.to_vec(),
            LevelSelection::Only(ls) => {
                for l in ls {
                    if !available.contains(l) {
                        return Err(*l);
                    }
                }
                ls.clone()
            }
        };
        chosen.sort();
        chosen.dedup();
        Ok(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_weak_to_strong() {
        use ConsistencyLevel::*;
        assert!(Cache < Weak);
        assert!(Weak < Causal);
        assert!(Causal < Strong);
        assert!(
            Weak < Custom {
                rank: 15,
                name: "quorum-2"
            }
        );
        assert!(Strong.at_least(Weak));
        assert!(!Weak.at_least(Strong));
        assert!(Weak.at_least(Weak));
    }

    #[test]
    fn display_names() {
        assert_eq!(ConsistencyLevel::Strong.to_string(), "strong");
        let c = ConsistencyLevel::Custom {
            rank: 3,
            name: "one-conf",
        };
        assert_eq!(c.to_string(), "one-conf");
    }

    #[test]
    fn selection_all_resolves_sorted() {
        use ConsistencyLevel::*;
        let avail = vec![Strong, Weak];
        let got = LevelSelection::All.resolve(&avail).unwrap();
        assert_eq!(got, vec![Weak, Strong]);
    }

    #[test]
    fn selection_subset_validated() {
        use ConsistencyLevel::*;
        let avail = vec![Weak, Strong];
        let ok = LevelSelection::Only(vec![Strong]).resolve(&avail).unwrap();
        assert_eq!(ok, vec![Strong]);
        let err = LevelSelection::Only(vec![Causal]).resolve(&avail);
        assert_eq!(err, Err(Causal));
    }

    #[test]
    fn selection_dedups() {
        use ConsistencyLevel::*;
        let avail = vec![Weak, Strong];
        let got = LevelSelection::Only(vec![Strong, Weak, Strong])
            .resolve(&avail)
            .unwrap();
        assert_eq!(got, vec![Weak, Strong]);
    }
}
