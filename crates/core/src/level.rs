//! Consistency levels: the vocabulary shared between applications and
//! storage bindings.
//!
//! The paper's API is "centered around consistency levels" (§3.2): an
//! application asks for *weak* or *strong* (or everything in between) and
//! the binding maps each level onto a storage-specific mechanism (quorum
//! size, cache access, leader read, …). Levels are totally ordered from
//! weakest to strongest by their [`rank`](ConsistencyLevel::rank).
//!
//! ## The open lattice
//!
//! Levels are **not** a closed enum. [`ConsistencyLevel`] is an interned
//! handle into a process-wide registry: five builtin levels
//! ([`CACHE`](ConsistencyLevel::CACHE) < [`WEAK`](ConsistencyLevel::WEAK)
//! < [`UPDATE`](ConsistencyLevel::UPDATE) <
//! [`CAUSAL`](ConsistencyLevel::CAUSAL) <
//! [`STRONG`](ConsistencyLevel::STRONG)) ship with the workspace, and a
//! binding registers anything else with
//! [`ConsistencyLevel::register`] — a blockchain binding can expose
//! per-confirmation levels, a quorum store per-`R` levels, and no core
//! code changes. Each level carries a stable small-int **wire id** (the
//! byte the TCP handshake negotiates level directories with), a rank, and
//! an owned (leaked-`'static`) name.
//!
//! A binding advertises its levels as a [`LevelSet`]: a validated,
//! totally-ordered (by rank), duplicate-free set with
//! [`weakest`](LevelSet::weakest) / [`strongest`](LevelSet::strongest) /
//! [`floor`](LevelSet::floor) lattice queries. Client code selects levels
//! with [`LevelSelection`]; the `Only` variant is backed by the inline
//! small-vector, so per-invoke selections stay allocation-free.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::inline::InlineVec;

/// Wire ids of the builtin levels (stable across versions; the codec's
/// decode-compat tests pin them).
const WIRE_CACHE: u8 = 0;
const WIRE_WEAK: u8 = 1;
const WIRE_UPDATE: u8 = 2;
const WIRE_CAUSAL: u8 = 3;
const WIRE_STRONG: u8 = 4;
/// First wire id handed to custom registrations; ids below are reserved
/// for future builtins.
const WIRE_CUSTOM_BASE: u8 = 16;

/// A consistency guarantee an operation result can satisfy.
///
/// A `ConsistencyLevel` is a cheap `Copy` handle: rank (position in the
/// weak→strong total order), wire id (stable byte for codecs and
/// handshakes), and name. Builtin levels are associated constants;
/// anything else is minted through [`ConsistencyLevel::register`], so the
/// lattice is open — core, transport, and sharding code query ranks and
/// roles instead of matching on a closed set of names.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub struct ConsistencyLevel {
    rank: u8,
    wire_id: u8,
    name: &'static str,
}

/// Why a level registration or set construction was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LevelError {
    /// A level with this name exists at a different rank.
    NameTaken {
        /// The conflicting name.
        name: String,
        /// The rank it is already registered at.
        existing_rank: u8,
    },
    /// The registry ran out of wire ids (more than ~240 custom levels).
    Exhausted,
    /// The name is empty or longer than 64 bytes.
    BadName,
    /// Two distinct levels in one set share a rank: the set would not be
    /// totally ordered.
    AmbiguousRank(u8),
}

impl fmt::Display for LevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevelError::NameTaken {
                name,
                existing_rank,
            } => write!(
                f,
                "level name {name:?} already registered at rank {existing_rank}"
            ),
            LevelError::Exhausted => f.write_str("level registry out of wire ids"),
            LevelError::BadName => f.write_str("level name must be 1..=64 bytes"),
            LevelError::AmbiguousRank(r) => {
                write!(f, "two distinct levels share rank {r}: not totally ordered")
            }
        }
    }
}

impl std::error::Error for LevelError {}

struct Registry {
    /// Every registered level, builtin and custom, in registration order.
    levels: Vec<ConsistencyLevel>,
    by_name: HashMap<&'static str, ConsistencyLevel>,
    next_wire_id: u8,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let builtins = [
            ConsistencyLevel::CACHE,
            ConsistencyLevel::WEAK,
            ConsistencyLevel::UPDATE,
            ConsistencyLevel::CAUSAL,
            ConsistencyLevel::STRONG,
        ];
        let by_name = builtins.iter().map(|l| (l.name, *l)).collect();
        Mutex::new(Registry {
            levels: builtins.to_vec(),
            by_name,
            next_wire_id: WIRE_CUSTOM_BASE,
        })
    })
}

impl ConsistencyLevel {
    /// Client-local cache: fastest, no freshness guarantee at all.
    pub const CACHE: ConsistencyLevel = ConsistencyLevel {
        rank: 0,
        wire_id: WIRE_CACHE,
        name: "cache",
    };
    /// Weak / eventual consistency (e.g. a single-replica read).
    pub const WEAK: ConsistencyLevel = ConsistencyLevel {
        rank: 10,
        wire_id: WIRE_WEAK,
        name: "weak",
    };
    /// Update consistency (Perrin, Mostéfaoui & Jard): updates are
    /// wait-free and all replicas eventually agree on a *single
    /// linearization of all updates* that respects each process's local
    /// order. Stronger than eventual consistency, cheaper than
    /// linearizability.
    pub const UPDATE: ConsistencyLevel = ConsistencyLevel {
        rank: 15,
        wire_id: WIRE_UPDATE,
        name: "update",
    };
    /// Causal consistency.
    pub const CAUSAL: ConsistencyLevel = ConsistencyLevel {
        rank: 20,
        wire_id: WIRE_CAUSAL,
        name: "causal",
    };
    /// Strong consistency (linearizability or the strongest the store has).
    pub const STRONG: ConsistencyLevel = ConsistencyLevel {
        rank: 40,
        wire_id: WIRE_STRONG,
        name: "strong",
    };

    /// Registers (or finds) a custom level named `name` at `rank`.
    ///
    /// Registration is idempotent: asking for an existing name at its
    /// registered rank returns the existing handle, so bindings and tests
    /// can call this freely at startup.
    ///
    /// # Errors
    ///
    /// [`LevelError::NameTaken`] if `name` exists at a different rank,
    /// [`LevelError::BadName`] for an empty or oversized name, and
    /// [`LevelError::Exhausted`] if the wire-id space is full.
    pub fn register(name: &str, rank: u8) -> Result<ConsistencyLevel, LevelError> {
        if name.is_empty() || name.len() > 64 {
            return Err(LevelError::BadName);
        }
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = reg.by_name.get(name) {
            return if existing.rank == rank {
                Ok(*existing)
            } else {
                Err(LevelError::NameTaken {
                    name: name.to_string(),
                    existing_rank: existing.rank,
                })
            };
        }
        if reg.next_wire_id == u8::MAX {
            return Err(LevelError::Exhausted);
        }
        // Leaked once per distinct level name, at registration time —
        // never on a per-invoke path. This is what keeps the handle Copy.
        let name: &'static str = Box::leak(name.to_string().into_boxed_str());
        let level = ConsistencyLevel {
            rank,
            wire_id: reg.next_wire_id,
            name,
        };
        reg.next_wire_id += 1;
        reg.levels.push(level);
        reg.by_name.insert(name, level);
        Ok(level)
    }

    /// Looks up a registered level by name (builtins included).
    pub fn lookup(name: &str) -> Option<ConsistencyLevel> {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.by_name.get(name).copied()
    }

    /// Looks up a registered level by its wire id (builtins included).
    pub fn from_wire_id(id: u8) -> Option<ConsistencyLevel> {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.levels.iter().find(|l| l.wire_id == id).copied()
    }

    /// Every level registered in this process, in registration order.
    pub fn all_registered() -> Vec<ConsistencyLevel> {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.levels.clone()
    }

    /// Position of this level in the weak-to-strong total order.
    pub fn rank(&self) -> u8 {
        self.rank
    }

    /// The stable small-int id codecs and handshakes use for this level.
    pub fn wire_id(&self) -> u8 {
        self.wire_id
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether this is one of the five builtin levels.
    pub fn is_builtin(&self) -> bool {
        self.wire_id < WIRE_CUSTOM_BASE
    }

    /// Whether this level is at least as strong as `other`.
    pub fn at_least(&self, other: ConsistencyLevel) -> bool {
        self.rank >= other.rank
    }
}

impl PartialOrd for ConsistencyLevel {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ConsistencyLevel {
    fn cmp(&self, other: &Self) -> Ordering {
        // Rank is the lattice order; wire id breaks ties between distinct
        // levels that happen to share a rank so sorting stays total.
        (self.rank, self.wire_id, self.name).cmp(&(other.rank, other.wire_id, other.name))
    }
}

impl fmt::Display for ConsistencyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

/// How many levels a [`LevelSet`] holds inline before spilling: the five
/// builtins plus one custom fit without touching the allocator.
const INLINE_LEVELS: usize = 6;

/// A binding-advertised, totally-ordered, validated set of levels.
///
/// Invariants (enforced by every constructor): sorted weakest-first,
/// duplicate-free, and no two distinct members share a rank — so
/// [`weakest`](LevelSet::weakest), [`strongest`](LevelSet::strongest),
/// and [`floor`](LevelSet::floor) are well-defined lattice queries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelSet {
    levels: InlineVec<ConsistencyLevel, INLINE_LEVELS>,
}

impl LevelSet {
    /// The empty set.
    pub fn new() -> LevelSet {
        LevelSet::default()
    }

    /// Builds a set from `levels`, sorting and deduplicating.
    ///
    /// # Errors
    ///
    /// [`LevelError::AmbiguousRank`] if two *distinct* levels share a
    /// rank — such a set has no total order.
    pub fn try_of(levels: &[ConsistencyLevel]) -> Result<LevelSet, LevelError> {
        let mut set = LevelSet::new();
        for l in levels {
            set.insert(*l)?;
        }
        Ok(set)
    }

    /// Builds a set from `levels`, sorting and deduplicating.
    ///
    /// # Panics
    ///
    /// If two distinct levels share a rank. Bindings advertise statically
    /// known sets, so this is an API-misuse panic; use
    /// [`LevelSet::try_of`] for dynamic input.
    pub fn of(levels: &[ConsistencyLevel]) -> LevelSet {
        match LevelSet::try_of(levels) {
            Ok(set) => set,
            Err(e) => panic!("invalid level set: {e}"),
        }
    }

    /// Inserts one level, keeping the set sorted. Inserting a member
    /// again is a no-op.
    ///
    /// # Errors
    ///
    /// [`LevelError::AmbiguousRank`] if a *different* level with the same
    /// rank is already present.
    pub fn insert(&mut self, level: ConsistencyLevel) -> Result<(), LevelError> {
        match self
            .levels
            .as_slice()
            .binary_search_by(|m| m.rank().cmp(&level.rank()))
        {
            Ok(i) => {
                if self.levels[i] == level {
                    Ok(())
                } else {
                    Err(LevelError::AmbiguousRank(level.rank()))
                }
            }
            Err(i) => {
                // InlineVec has no `insert`; push + rotate the tail.
                self.levels.push(level);
                self.levels.as_mut_slice()[i..].rotate_right(1);
                Ok(())
            }
        }
    }

    /// The weakest member, if any.
    pub fn weakest(&self) -> Option<ConsistencyLevel> {
        self.levels.first().copied()
    }

    /// The strongest member, if any.
    pub fn strongest(&self) -> Option<ConsistencyLevel> {
        self.levels.last().copied()
    }

    /// Whether `level` is a member.
    pub fn contains(&self, level: ConsistencyLevel) -> bool {
        self.levels
            .as_slice()
            .binary_search_by(|m| m.rank().cmp(&level.rank()))
            .is_ok_and(|i| self.levels[i] == level)
    }

    /// The strongest member whose rank is `<= rank`: the lattice floor.
    ///
    /// This is what a merge (e.g. the shard router's scatter/gather)
    /// uses to land a combined view on an *advertised* level instead of
    /// assuming the minimum input level is one.
    pub fn floor(&self, rank: u8) -> Option<ConsistencyLevel> {
        self.levels
            .as_slice()
            .iter()
            .rev()
            .find(|l| l.rank() <= rank)
            .copied()
    }

    /// The intersection of two sets (set meet).
    pub fn meet(&self, other: &LevelSet) -> LevelSet {
        let mut out = LevelSet::new();
        for l in self.iter() {
            if other.contains(l) {
                // Members of a valid set can always be re-inserted.
                let _ = out.insert(l);
            }
        }
        out
    }

    /// Members as a sorted slice, weakest first.
    pub fn as_slice(&self) -> &[ConsistencyLevel] {
        self.levels.as_slice()
    }

    /// Iterates the members weakest-first.
    pub fn iter(&self) -> impl Iterator<Item = ConsistencyLevel> + '_ {
        self.levels.as_slice().iter().copied()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Members as an owned `Vec` (allocates; prefer
    /// [`as_slice`](LevelSet::as_slice) on hot paths).
    pub fn to_vec(&self) -> Vec<ConsistencyLevel> {
        self.levels.as_slice().to_vec()
    }
}

impl<'a> IntoIterator for &'a LevelSet {
    type Item = ConsistencyLevel;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ConsistencyLevel>>;

    fn into_iter(self) -> Self::IntoIter {
        self.levels.as_slice().iter().copied()
    }
}

impl FromIterator<ConsistencyLevel> for LevelSet {
    /// Collects levels into a set.
    ///
    /// # Panics
    ///
    /// If two distinct levels share a rank (see [`LevelSet::of`]).
    fn from_iter<I: IntoIterator<Item = ConsistencyLevel>>(iter: I) -> LevelSet {
        let mut set = LevelSet::new();
        for l in iter {
            if let Err(e) = set.insert(l) {
                panic!("invalid level set: {e}");
            }
        }
        set
    }
}

/// Which of a binding's levels an `invoke` should deliver.
///
/// `Only` is backed by a [`LevelSet`] (inline storage for up to six
/// levels), so building a per-invoke selection does not allocate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum LevelSelection {
    /// Deliver every level the binding supports (the default of `invoke`).
    #[default]
    All,
    /// Deliver only the listed levels (must be a subset of the binding's).
    Only(LevelSet),
}

impl LevelSelection {
    /// A selection of exactly the given levels (sorted, deduplicated;
    /// allocation-free for up to six levels).
    ///
    /// # Panics
    ///
    /// If two distinct levels share a rank (see [`LevelSet::of`]).
    pub fn only(levels: &[ConsistencyLevel]) -> LevelSelection {
        LevelSelection::Only(LevelSet::of(levels))
    }

    /// Resolves the selection against a binding's advertised levels,
    /// returning the requested levels sorted weakest-first.
    ///
    /// # Errors
    ///
    /// Returns the offending level if it is not advertised by the binding.
    pub fn resolve(&self, available: &LevelSet) -> Result<LevelSet, ConsistencyLevel> {
        match self {
            LevelSelection::All => Ok(available.clone()),
            LevelSelection::Only(set) => {
                for l in set.iter() {
                    if !available.contains(l) {
                        return Err(l);
                    }
                }
                Ok(set.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CACHE: ConsistencyLevel = ConsistencyLevel::CACHE;
    const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
    const UPDATE: ConsistencyLevel = ConsistencyLevel::UPDATE;
    const CAUSAL: ConsistencyLevel = ConsistencyLevel::CAUSAL;
    const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;

    #[test]
    fn ordering_is_weak_to_strong() {
        assert!(CACHE < WEAK);
        assert!(WEAK < UPDATE);
        assert!(UPDATE < CAUSAL);
        assert!(CAUSAL < STRONG);
        let quorum2 = ConsistencyLevel::register("quorum-2", 25).unwrap();
        assert!(CAUSAL < quorum2 && quorum2 < STRONG);
        assert!(STRONG.at_least(WEAK));
        assert!(!WEAK.at_least(STRONG));
        assert!(WEAK.at_least(WEAK));
    }

    #[test]
    fn display_names() {
        assert_eq!(STRONG.to_string(), "strong");
        let c = ConsistencyLevel::register("one-conf", 3).unwrap();
        assert_eq!(c.to_string(), "one-conf");
    }

    #[test]
    fn registration_is_idempotent_and_rank_checked() {
        let a = ConsistencyLevel::register("bronze", 13).unwrap();
        let b = ConsistencyLevel::register("bronze", 13).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            ConsistencyLevel::register("bronze", 14),
            Err(LevelError::NameTaken {
                name: "bronze".into(),
                existing_rank: 13
            })
        );
        assert_eq!(ConsistencyLevel::register("", 1), Err(LevelError::BadName));
    }

    #[test]
    fn registry_lookup_by_name_and_wire_id() {
        assert_eq!(ConsistencyLevel::lookup("weak"), Some(WEAK));
        assert_eq!(ConsistencyLevel::lookup("update"), Some(UPDATE));
        assert_eq!(ConsistencyLevel::lookup("no-such-level"), None);
        assert_eq!(ConsistencyLevel::from_wire_id(WEAK.wire_id()), Some(WEAK));
        let c = ConsistencyLevel::register("silver", 17).unwrap();
        assert!(!c.is_builtin());
        assert!(c.wire_id() >= WIRE_CUSTOM_BASE);
        assert_eq!(ConsistencyLevel::from_wire_id(c.wire_id()), Some(c));
        assert_eq!(ConsistencyLevel::from_wire_id(250), None);
    }

    #[test]
    fn builtin_wire_ids_are_stable() {
        assert_eq!(CACHE.wire_id(), 0);
        assert_eq!(WEAK.wire_id(), 1);
        assert_eq!(UPDATE.wire_id(), 2);
        assert_eq!(CAUSAL.wire_id(), 3);
        assert_eq!(STRONG.wire_id(), 4);
        assert!(CACHE.is_builtin() && STRONG.is_builtin());
    }

    #[test]
    fn level_set_sorts_dedups_and_queries() {
        let set = LevelSet::of(&[STRONG, WEAK, STRONG, CAUSAL]);
        assert_eq!(set.as_slice(), &[WEAK, CAUSAL, STRONG]);
        assert_eq!(set.weakest(), Some(WEAK));
        assert_eq!(set.strongest(), Some(STRONG));
        assert!(set.contains(CAUSAL));
        assert!(!set.contains(UPDATE));
        assert_eq!(set.len(), 3);
        assert_eq!(set.floor(UPDATE.rank()), Some(WEAK));
        assert_eq!(set.floor(CAUSAL.rank()), Some(CAUSAL));
        assert_eq!(set.floor(u8::MAX), Some(STRONG));
        assert_eq!(set.floor(0), None);
    }

    #[test]
    fn level_set_rejects_ambiguous_ranks() {
        let twin = ConsistencyLevel::register("strong-twin", STRONG.rank()).unwrap();
        assert_eq!(
            LevelSet::try_of(&[STRONG, twin]),
            Err(LevelError::AmbiguousRank(STRONG.rank()))
        );
    }

    #[test]
    fn level_set_meet_is_intersection() {
        let a = LevelSet::of(&[WEAK, UPDATE, STRONG]);
        let b = LevelSet::of(&[WEAK, CAUSAL, STRONG]);
        assert_eq!(a.meet(&b).as_slice(), &[WEAK, STRONG]);
        assert_eq!(a.meet(&LevelSet::new()), LevelSet::new());
    }

    #[test]
    fn selection_all_resolves_sorted() {
        let avail = LevelSet::of(&[STRONG, WEAK]);
        let got = LevelSelection::All.resolve(&avail).unwrap();
        assert_eq!(got.as_slice(), &[WEAK, STRONG]);
    }

    #[test]
    fn selection_subset_validated() {
        let avail = LevelSet::of(&[WEAK, STRONG]);
        let ok = LevelSelection::only(&[STRONG]).resolve(&avail).unwrap();
        assert_eq!(ok.as_slice(), &[STRONG]);
        let err = LevelSelection::only(&[CAUSAL]).resolve(&avail);
        assert_eq!(err, Err(CAUSAL));
    }

    #[test]
    fn selection_dedups() {
        let avail = LevelSet::of(&[WEAK, STRONG]);
        let got = LevelSelection::only(&[STRONG, WEAK, STRONG])
            .resolve(&avail)
            .unwrap();
        assert_eq!(got.as_slice(), &[WEAK, STRONG]);
    }

    #[test]
    fn fifth_custom_level_needs_no_core_changes() {
        // The acceptance test of the open lattice: mint a level between
        // causal and strong and drive the whole selection machinery with
        // it, without touching any core code.
        let audit = ConsistencyLevel::register("audited", 30).unwrap();
        let avail = LevelSet::of(&[WEAK, UPDATE, CAUSAL, audit, STRONG]);
        assert_eq!(avail.as_slice()[3], audit);
        let sel = LevelSelection::only(&[audit, WEAK]);
        let resolved = sel.resolve(&avail).unwrap();
        assert_eq!(resolved.as_slice(), &[WEAK, audit]);
        assert_eq!(avail.floor(35), Some(audit));
    }
}
