//! A vendored smallvec-style vector with inline storage.
//!
//! The Correctable state machine stores views and callbacks for at most a
//! handful of consistency levels (the workspace ships four), so the common
//! case fits in a fixed inline buffer and never touches the allocator.
//! [`InlineVec`] keeps the first `N` elements inline and spills the whole
//! collection to a heap `Vec` only when it outgrows the buffer.
//!
//! Scope is deliberately minimal: push, slice access, owned iteration, and
//! `mem::take` (via `Default`) — exactly what `correctable.rs` needs.

use std::mem::MaybeUninit;

/// A growable vector whose first `N` elements live inline.
pub struct InlineVec<T, const N: usize> {
    /// Initialized prefix length of `inline`; 0 once spilled.
    len: u32,
    spilled: bool,
    inline: [MaybeUninit<T>; N],
    heap: Vec<T>,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// An empty vector; performs no allocation.
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            spilled: false,
            // SAFETY: an array of `MaybeUninit` is valid uninitialized.
            inline: unsafe { MaybeUninit::<[MaybeUninit<T>; N]>::uninit().assume_init() },
            heap: Vec::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        if self.spilled {
            self.heap.len()
        } else {
            self.len as usize
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an element, spilling to the heap on overflow of the inline
    /// buffer.
    pub fn push(&mut self, value: T) {
        if self.spilled {
            self.heap.push(value);
        } else if (self.len as usize) < N {
            self.inline[self.len as usize].write(value);
            self.len += 1;
        } else {
            self.spill();
            self.heap.push(value);
        }
    }

    /// Moves the inline elements onto the heap.
    fn spill(&mut self) {
        debug_assert!(!self.spilled);
        let n = self.len as usize;
        self.heap.reserve(n * 2 + 1);
        for slot in &self.inline[..n] {
            // SAFETY: the first `len` slots are initialized, and `len` is
            // reset below so they are never read (or dropped) again.
            self.heap.push(unsafe { slot.assume_init_read() });
        }
        self.len = 0;
        self.spilled = true;
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spilled {
            &self.heap
        } else {
            // SAFETY: the first `len` inline slots are initialized.
            unsafe {
                std::slice::from_raw_parts(self.inline.as_ptr().cast::<T>(), self.len as usize)
            }
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spilled {
            &mut self.heap
        } else {
            // SAFETY: the first `len` inline slots are initialized.
            unsafe {
                std::slice::from_raw_parts_mut(
                    self.inline.as_mut_ptr().cast::<T>(),
                    self.len as usize,
                )
            }
        }
    }

    /// Removes every element, dropping each.
    pub fn clear(&mut self) {
        if self.spilled {
            self.heap.clear();
        } else {
            let n = self.len as usize;
            // Reset before dropping so a panicking destructor cannot cause
            // a double drop.
            self.len = 0;
            for slot in &mut self.inline[..n] {
                // SAFETY: the first `n` slots were initialized and `len` is
                // already zeroed.
                unsafe { slot.assume_init_drop() };
            }
        }
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Clone, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        let mut out = InlineVec::new();
        for item in self.as_slice() {
            out.push(item.clone());
        }
        out
    }
}

impl<T: std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T, const N: usize> Drop for InlineVec<T, N> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl<T, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> std::ops::DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

/// Owned iterator over an [`InlineVec`].
pub enum IntoIter<T, const N: usize> {
    /// Iterating the inline buffer; `[next, len)` are still initialized.
    Inline {
        /// The inline buffer, moved out of the vector.
        buf: [MaybeUninit<T>; N],
        /// Initialized prefix length.
        len: usize,
        /// Next element to yield.
        next: usize,
    },
    /// Iterating a spilled heap vector.
    Heap(std::vec::IntoIter<T>),
}

impl<T, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;

    fn into_iter(self) -> IntoIter<T, N> {
        // Disarm our own Drop; ownership of every element moves into the
        // iterator (the leftover empty `Vec` holds no allocation).
        let mut me = std::mem::ManuallyDrop::new(self);
        if me.spilled {
            IntoIter::Heap(std::mem::take(&mut me.heap).into_iter())
        } else {
            // SAFETY: `me` is never touched again after the buffer is read.
            let buf = unsafe { std::ptr::read(&me.inline) };
            IntoIter::Inline {
                buf,
                len: me.len as usize,
                next: 0,
            }
        }
    }
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self {
            IntoIter::Inline { buf, len, next } => {
                if next < len {
                    let i = *next;
                    *next += 1;
                    // SAFETY: slots in `[next, len)` are initialized and
                    // each is read exactly once.
                    Some(unsafe { buf[i].assume_init_read() })
                } else {
                    None
                }
            }
            IntoIter::Heap(it) => it.next(),
        }
    }
}

impl<T, const N: usize> Drop for IntoIter<T, N> {
    fn drop(&mut self) {
        if let IntoIter::Inline { buf, len, next } = self {
            let (from, to) = (*next, *len);
            // Prevent double drops if an element destructor panics.
            *next = *len;
            for slot in &mut buf[from..to] {
                // SAFETY: slots in `[from, to)` were initialized and not
                // yet yielded.
                unsafe { slot.assume_init_drop() };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn push_and_read_within_inline_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        v[2] = 9;
        assert_eq!(v[2], 9);
    }

    #[test]
    fn spills_past_inline_capacity() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..100 {
            v.push(i);
        }
        assert_eq!(v.len(), 100);
        assert_eq!(v[0], 0);
        assert_eq!(v[99], 99);
        assert_eq!(v.iter().sum::<u32>(), (0..100).sum());
    }

    #[test]
    fn into_iter_yields_in_order_inline_and_spilled() {
        let mut small: InlineVec<String, 4> = InlineVec::new();
        small.push("a".into());
        small.push("b".into());
        assert_eq!(small.into_iter().collect::<Vec<_>>(), vec!["a", "b"]);

        let mut big: InlineVec<String, 2> = InlineVec::new();
        for i in 0..5 {
            big.push(i.to_string());
        }
        assert_eq!(
            big.into_iter().collect::<Vec<_>>(),
            vec!["0", "1", "2", "3", "4"]
        );
    }

    /// Bumps a counter on drop, to account for every destructor call.
    struct Counted(Arc<AtomicUsize>);
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn drops_every_element_exactly_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        // Dropped while still inline.
        {
            let mut v: InlineVec<Counted, 4> = InlineVec::new();
            v.push(Counted(Arc::clone(&drops)));
            v.push(Counted(Arc::clone(&drops)));
        }
        assert_eq!(drops.load(Ordering::SeqCst), 2);
        // Dropped after spilling.
        {
            let mut v: InlineVec<Counted, 2> = InlineVec::new();
            for _ in 0..5 {
                v.push(Counted(Arc::clone(&drops)));
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 7);
        // Partially consumed iterator drops the rest.
        {
            let mut v: InlineVec<Counted, 4> = InlineVec::new();
            for _ in 0..3 {
                v.push(Counted(Arc::clone(&drops)));
            }
            let mut it = v.into_iter();
            drop(it.next());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn mem_take_leaves_an_empty_vector() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(1);
        let taken = std::mem::take(&mut v);
        assert_eq!(taken.as_slice(), &[1]);
        assert!(v.is_empty());
        v.push(2);
        assert_eq!(v.as_slice(), &[2]);
    }

    #[test]
    fn clear_resets_inline_and_spilled() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        v.clear();
        assert!(v.is_empty());
        v.push(7);
        assert_eq!(v.as_slice(), &[7]);
    }
}
