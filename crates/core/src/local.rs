//! A small threaded replicated store with a Correctables binding.
//!
//! This module exists so the core abstraction can be exercised with real
//! threads and real (wall-clock) delays — the quickstart example and the
//! doctests use it. It models a primary-backup pair: writes apply at the
//! primary and propagate to the backup after a replication delay, weak
//! reads hit the (possibly stale) backup quickly, and strong reads pay the
//! longer round trip to the primary. The large WAN-scale experiments use
//! the deterministic simulator substrates instead.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::binding::{Binding, KeyedOp, ObjectId, Upcall};
use crate::level::{ConsistencyLevel, LevelSet};

/// Artificial latencies of the toy cluster.
#[derive(Clone, Copy, Debug)]
pub struct Delays {
    /// Client → backup round trip (weak reads).
    pub weak_read: Duration,
    /// Client → primary round trip (strong reads).
    pub strong_read: Duration,
    /// Primary → backup propagation delay (staleness window).
    pub replication: Duration,
    /// Client → primary write acknowledgment.
    pub write_ack: Duration,
}

impl Default for Delays {
    fn default() -> Self {
        Delays {
            weak_read: Duration::from_millis(2),
            strong_read: Duration::from_millis(40),
            replication: Duration::from_millis(60),
            write_ack: Duration::from_millis(40),
        }
    }
}

/// Operations of the toy store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LocalOp {
    /// Read a key.
    Get(String),
    /// Write a key; the result views carry the written value.
    Put(String, String),
}

impl KeyedOp for LocalOp {
    fn object_id(&self) -> ObjectId {
        match self {
            LocalOp::Get(key) | LocalOp::Put(key, _) => ObjectId::from_bytes(key.as_bytes()),
        }
    }
}

type Store = HashMap<String, (u64, String)>;

struct ClusterState {
    primary: Mutex<Store>,
    backup: Mutex<Store>,
    delays: Delays,
}

/// A two-replica in-process cluster with asynchronous backup replication.
#[derive(Clone)]
pub struct LocalCluster {
    state: Arc<ClusterState>,
    sched: Arc<Scheduler>,
}

impl LocalCluster {
    /// Creates a cluster with the given artificial delays.
    pub fn new(delays: Delays) -> Self {
        LocalCluster {
            state: Arc::new(ClusterState {
                primary: Mutex::new(HashMap::new()),
                backup: Mutex::new(HashMap::new()),
                delays,
            }),
            sched: Arc::new(Scheduler::new()),
        }
    }

    /// A binding over this cluster offering `Weak` and `Strong` levels.
    pub fn binding(&self) -> LocalBinding {
        LocalBinding {
            cluster: self.clone(),
        }
    }

    /// Writes directly, synchronously, to both replicas (test setup aid).
    pub fn seed(&self, key: &str, value: &str) {
        let mut p = self.state.primary.lock();
        let ver = p.get(key).map(|(v, _)| v + 1).unwrap_or(1);
        p.insert(key.to_string(), (ver, value.to_string()));
        drop(p);
        self.state
            .backup
            .lock()
            .insert(key.to_string(), (ver, value.to_string()));
    }
}

/// The Correctables binding for [`LocalCluster`].
#[derive(Clone)]
pub struct LocalBinding {
    cluster: LocalCluster,
}

impl Binding for LocalBinding {
    type Op = LocalOp;
    type Val = Option<String>;

    fn consistency_levels(&self) -> LevelSet {
        LevelSet::of(&[ConsistencyLevel::WEAK, ConsistencyLevel::STRONG])
    }

    fn submit(&self, op: LocalOp, levels: &[ConsistencyLevel], upcall: Upcall<Option<String>>) {
        let st = Arc::clone(&self.cluster.state);
        let d = st.delays;
        match op {
            LocalOp::Get(key) => {
                if levels.contains(&ConsistencyLevel::WEAK) {
                    let st2 = Arc::clone(&st);
                    let key2 = key.clone();
                    let up = upcall.clone();
                    self.cluster.sched.schedule(d.weak_read, move || {
                        let v = st2.backup.lock().get(&key2).map(|(_, s)| s.clone());
                        up.deliver(v, ConsistencyLevel::WEAK);
                    });
                }
                if levels.contains(&ConsistencyLevel::STRONG) {
                    let up = upcall;
                    self.cluster.sched.schedule(d.strong_read, move || {
                        let v = st.primary.lock().get(&key).map(|(_, s)| s.clone());
                        up.deliver(v, ConsistencyLevel::STRONG);
                    });
                }
            }
            LocalOp::Put(key, value) => {
                let sched = Arc::clone(&self.cluster.sched);
                let levels = levels.to_vec();
                self.cluster.sched.schedule(d.write_ack, move || {
                    let ver = {
                        let mut p = st.primary.lock();
                        let ver = p.get(&key).map(|(v, _)| v + 1).unwrap_or(1);
                        p.insert(key.clone(), (ver, value.clone()));
                        ver
                    };
                    // Propagate to the backup after the replication delay;
                    // last-writer-wins on version.
                    let st2 = Arc::clone(&st);
                    let key2 = key.clone();
                    let value2 = value.clone();
                    sched.schedule(d.replication, move || {
                        let mut b = st2.backup.lock();
                        let stale = b.get(&key2).map(|(v, _)| *v < ver).unwrap_or(true);
                        if stale {
                            b.insert(key2, (ver, value2));
                        }
                    });
                    for l in levels {
                        upcall.deliver(Some(value.clone()), l);
                    }
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Timer-wheel scheduler
// ---------------------------------------------------------------------------

struct Task {
    at: Instant,
    seq: u64,
    run: Box<dyn FnOnce() + Send>,
}

impl PartialEq for Task {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Task {}
impl PartialOrd for Task {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Task {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inverted into a min-heap on (time, sequence).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct SchedShared {
    queue: Mutex<(BinaryHeap<Task>, u64)>,
    cv: Condvar,
    stop: AtomicBool,
}

/// A single background thread executing closures at deadlines.
pub struct Scheduler {
    shared: Arc<SchedShared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts the scheduler thread.
    pub fn new() -> Self {
        let shared = Arc::new(SchedShared {
            queue: Mutex::new((BinaryHeap::new(), 0)),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let worker = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("correctables-local-sched".into())
            .spawn(move || Scheduler::run(&worker))
            .expect("spawn scheduler thread");
        Scheduler {
            shared,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Schedules `f` to run after `delay` on the scheduler thread.
    pub fn schedule(&self, delay: Duration, f: impl FnOnce() + Send + 'static) {
        let mut q = self.shared.queue.lock();
        let seq = q.1;
        q.1 += 1;
        q.0.push(Task {
            at: Instant::now() + delay,
            seq,
            run: Box::new(f),
        });
        drop(q);
        self.shared.cv.notify_one();
    }

    fn run(shared: &SchedShared) {
        loop {
            let task = {
                let mut q = shared.queue.lock();
                loop {
                    if shared.stop.load(AtomicOrdering::Acquire) {
                        return;
                    }
                    let now = Instant::now();
                    match q.0.peek() {
                        Some(t) if t.at <= now => break q.0.pop().expect("peeked"),
                        Some(t) => {
                            let at = t.at;
                            let _ = shared.cv.wait_until(&mut q, at);
                        }
                        None => shared.cv.wait(&mut q),
                    }
                }
            };
            (task.run)();
        }
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.stop.store(true, AtomicOrdering::Release);
        self.shared.cv.notify_all();
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::correctable::State;

    fn fast_delays() -> Delays {
        Delays {
            weak_read: Duration::from_millis(1),
            strong_read: Duration::from_millis(25),
            replication: Duration::from_millis(50),
            write_ack: Duration::from_millis(10),
        }
    }

    #[test]
    fn scheduler_runs_tasks_in_deadline_order() {
        let s = Scheduler::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let (l1, l2) = (Arc::clone(&log), Arc::clone(&log));
        s.schedule(Duration::from_millis(30), move || l1.lock().push(2));
        s.schedule(Duration::from_millis(5), move || l2.lock().push(1));
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(*log.lock(), vec![1, 2]);
    }

    #[test]
    fn weak_read_beats_strong_read() {
        let cluster = LocalCluster::new(fast_delays());
        cluster.seed("k", "v0");
        let client = Client::new(cluster.binding());
        let c = client.invoke(LocalOp::Get("k".into()));
        let first = c.wait_any(Duration::from_secs(5)).unwrap();
        assert_eq!(first.level, ConsistencyLevel::WEAK);
        assert_eq!(first.value.as_deref(), Some("v0"));
        let last = c.wait_final(Duration::from_secs(5)).unwrap();
        assert_eq!(last.level, ConsistencyLevel::STRONG);
    }

    #[test]
    fn stale_backup_is_visible_to_weak_reads_then_converges() {
        let cluster = LocalCluster::new(fast_delays());
        cluster.seed("k", "old");
        let client = Client::new(cluster.binding());
        client
            .invoke_strong(LocalOp::Put("k".into(), "new".into()))
            .wait_final(Duration::from_secs(5))
            .unwrap();
        // Immediately after the ack the backup is still stale.
        let weak = client
            .invoke_weak(LocalOp::Get("k".into()))
            .wait_final(Duration::from_secs(5))
            .unwrap();
        assert_eq!(weak.value.as_deref(), Some("old"));
        // The ICG invocation sees divergence: weak=old, strong=new.
        let icg = client.invoke(LocalOp::Get("k".into()));
        let fin = icg.wait_final(Duration::from_secs(5)).unwrap();
        assert_eq!(fin.value.as_deref(), Some("new"));
        // After the replication delay the backup converges.
        std::thread::sleep(Duration::from_millis(80));
        let weak2 = client
            .invoke_weak(LocalOp::Get("k".into()))
            .wait_final(Duration::from_secs(5))
            .unwrap();
        assert_eq!(weak2.value.as_deref(), Some("new"));
    }

    #[test]
    fn speculation_over_local_cluster() {
        let cluster = LocalCluster::new(fast_delays());
        cluster.seed("ref", "target-1");
        cluster.seed("target-1", "payload");
        let client = Client::new(cluster.binding());
        let cluster2 = cluster.clone();
        // Chase the pointer speculatively: fetch `target` named by `ref`.
        let out = client.invoke(LocalOp::Get("ref".into())).speculate_async(
            move |r: &Option<String>| {
                let key = r.clone().unwrap_or_default();
                Client::new(cluster2.binding()).invoke_strong(LocalOp::Get(key))
            },
            |_| {},
        );
        let v = out.wait_final(Duration::from_secs(5)).unwrap();
        assert_eq!(v.value.as_deref(), Some("payload"));
    }

    #[test]
    fn missing_key_reads_none() {
        let cluster = LocalCluster::new(fast_delays());
        let client = Client::new(cluster.binding());
        let v = client
            .invoke(LocalOp::Get("absent".into()))
            .wait_final(Duration::from_secs(5))
            .unwrap();
        assert_eq!(v.value, None);
        assert_eq!(v.level, ConsistencyLevel::STRONG);
    }

    #[test]
    fn put_views_carry_written_value() {
        let cluster = LocalCluster::new(fast_delays());
        let client = Client::new(cluster.binding());
        let c = client.invoke(LocalOp::Put("k".into(), "v".into()));
        let fin = c.wait_final(Duration::from_secs(5)).unwrap();
        assert_eq!(fin.value.as_deref(), Some("v"));
        assert_eq!(c.state(), State::Final);
    }
}
