//! # correctables — incremental consistency guarantees for replicated objects
//!
//! This crate implements **Correctables**, the abstraction introduced by
//! Guerraoui, Pavlovic, and Seredinschi in *Incremental Consistency
//! Guarantees for Replicated Objects* (OSDI 2016). A [`Correctable`]
//! generalizes a Promise from one future value to a *sequence of
//! incremental views* of an ongoing operation on a replicated object: a
//! fast, weakly consistent **preliminary** view arrives first, stronger
//! views follow, and the strongest requested view **closes** the object
//! (Figure 3 of the paper: *updating → updating* on each preliminary view,
//! *updating → final* on close, *updating → error* on failure).
//!
//! ## The API (§3.2)
//!
//! Applications talk to storage through a [`Client`] over a [`Binding`]:
//!
//! - [`Client::invoke_weak`] — single view at the weakest level;
//! - [`Client::invoke_strong`] — single view at the strongest level;
//! - [`Client::invoke`] — incremental views across all levels (ICG).
//!
//! Bindings implement exactly the paper's two-method storage interface
//! ([`Binding::consistency_levels`] / [`Binding::submit`]) and encapsulate
//! every storage-specific protocol, keeping application code portable.
//!
//! ## Exploiting ICG
//!
//! - **Speculation** (§4.2): [`Correctable::speculate`] /
//!   [`Correctable::speculate_async`] run dependent work on preliminary
//!   views and confirm (or redo) it when the final view arrives.
//! - **Application semantics** (§4.3): attach callbacks with
//!   [`Correctable::set_callbacks`] and decide dynamically whether to act
//!   on a preliminary view.
//! - **Incremental exposure** (§4.4): re-render on every view.
//!
//! ## Example
//!
//! ```
//! use std::time::Duration;
//! use correctables::local::{Delays, LocalCluster, LocalOp};
//! use correctables::{Client, ConsistencyLevel};
//!
//! // A two-replica threaded toy cluster (weak reads may be stale).
//! let cluster = LocalCluster::new(Delays::default());
//! cluster.seed("user:42:name", "Ada");
//! let client = Client::new(cluster.binding());
//!
//! // One invocation, two views: weak now, strong later.
//! let result = client.invoke(LocalOp::Get("user:42:name".into()));
//! let prelim = result.wait_any(Duration::from_secs(5)).unwrap();
//! assert_eq!(prelim.value.as_deref(), Some("Ada"));
//! let fin = result.wait_final(Duration::from_secs(5)).unwrap();
//! assert_eq!(fin.level, ConsistencyLevel::STRONG);
//! ```

// Public API documentation is complete and enforced: CI's lint job runs
// clippy with `-D warnings`, which promotes this to an error.
#![warn(missing_docs)]

pub mod binding;
pub mod client;
pub mod combinators;
pub mod correctable;
pub mod error;
pub mod inline;
pub mod level;
pub mod local;
pub mod record;
pub mod spec;
pub mod speculate;
pub mod view;

pub use binding::{Binding, DeliveryObserver, KeyedOp, ObjectId, Upcall};
pub use client::Client;
pub use correctable::{Correctable, Handle, State};
pub use error::{ClosedError, Error};
pub use level::{ConsistencyLevel, LevelError, LevelSelection, LevelSet};
pub use record::{History, HistoryEvent, Invocation, RecordingBinding};
pub use speculate::SpeculationStats;
pub use view::View;
