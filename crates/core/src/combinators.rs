//! Promise-style combinators inherited from modern Promises (§3 of the
//! paper mentions aggregation and monadic-style chaining; this module
//! provides them for Correctables).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::correctable::Correctable;
use crate::error::Error;
use crate::level::ConsistencyLevel;
use crate::view::View;

/// Drains a fully populated slot list into `(values, weakest level)` —
/// the aggregate is only as strong as its weakest view.
fn finish_join<T>(slots: &mut [Option<View<T>>]) -> (Vec<T>, ConsistencyLevel) {
    let level = slots
        .iter()
        .map(|s| s.as_ref().expect("all slots filled").level)
        .min()
        .expect("non-empty");
    let values = slots
        .iter_mut()
        .map(|s| s.take().expect("all slots filled").value)
        .collect();
    (values, level)
}

impl<T: Clone + Send + 'static> Correctable<T> {
    /// Transforms every view (preliminary and final) with `f`.
    pub fn map<U, F>(&self, f: F) -> Correctable<U>
    where
        U: Clone + Send + 'static,
        F: FnMut(&T) -> U + Send + 'static,
    {
        let (out, handle) = Correctable::<U>::pending();
        let f = Arc::new(Mutex::new(f));
        let h_u = handle.clone();
        let f_u = Arc::clone(&f);
        self.on_update(move |v: &View<T>| {
            let mapped = (f_u.lock())(&v.value);
            let _ = h_u.update(mapped, v.level);
        });
        let h_f = handle.clone();
        let f_f = Arc::clone(&f);
        self.on_final(move |v: &View<T>| {
            let mapped = (f_f.lock())(&v.value);
            let _ = h_f.close(mapped, v.level);
        });
        let h_e = handle;
        self.on_error(move |e: &Error| {
            let _ = h_e.fail(e.clone());
        });
        out
    }

    /// Chains an asynchronous continuation on the final view; preliminary
    /// views of `self` are forwarded as preliminary views of the result
    /// (mapped through nothing — the continuation only sees the final).
    pub fn then<U, F>(&self, f: F) -> Correctable<U>
    where
        U: Clone + Send + 'static,
        F: FnOnce(&View<T>) -> Correctable<U> + Send + 'static,
    {
        let (out, handle) = Correctable::<U>::pending();
        let h_f = handle.clone();
        self.on_final(move |v: &View<T>| {
            let next = f(v);
            let h_u = h_f.clone();
            next.on_update(move |u: &View<U>| {
                let _ = h_u.update(u.value.clone(), u.level);
            });
            let h_c = h_f.clone();
            next.on_final(move |u: &View<U>| {
                let _ = h_c.close(u.value.clone(), u.level);
            });
            let h_e = h_f.clone();
            next.on_error(move |e: &Error| {
                let _ = h_e.fail(e.clone());
            });
        });
        let h_e = handle;
        self.on_error(move |e: &Error| {
            let _ = h_e.fail(e.clone());
        });
        out
    }

    /// Aggregates many Correctables: the result closes with all final
    /// values, in input order, once every input has closed.
    ///
    /// The first input error fails the aggregate immediately.
    ///
    /// Inputs that have already closed are harvested synchronously with a
    /// lock-free probe ([`Correctable::outcome`]); callback closures are
    /// boxed and registered only for inputs still open at call time, so
    /// joining a set of ready results performs no callback allocation.
    pub fn join_all(items: Vec<Correctable<T>>) -> Correctable<Vec<T>> {
        let (out, handle) = Correctable::<Vec<T>>::pending();
        let n = items.len();
        if n == 0 {
            let _ = handle.close(Vec::new(), crate::level::ConsistencyLevel::STRONG);
            return out;
        }
        // Harvest everything already closed without registering callbacks.
        let mut slots: Vec<Option<View<T>>> = Vec::with_capacity(n);
        let mut open = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match item.outcome() {
                Some(Ok(v)) => slots.push(Some(v)),
                Some(Err(e)) => {
                    let _ = handle.fail(e);
                    return out;
                }
                None => {
                    slots.push(None);
                    open.push(i);
                }
            }
        }
        if open.is_empty() {
            let (values, level) = finish_join(&mut slots);
            let _ = handle.close(values, level);
            return out;
        }
        struct JoinState<T> {
            slots: Vec<Option<View<T>>>,
            remaining: usize,
        }
        let state = Arc::new(Mutex::new(JoinState {
            remaining: open.len(),
            slots,
        }));
        for i in open {
            let st = Arc::clone(&state);
            let h = handle.clone();
            // An input that closed between the probe above and this
            // registration fires the callback immediately (replay), so no
            // completion is lost.
            items[i].on_final(move |v: &View<T>| {
                let done = {
                    let mut g = st.lock();
                    if g.slots[i].is_none() {
                        g.slots[i] = Some(v.clone());
                        g.remaining -= 1;
                    }
                    if g.remaining == 0 {
                        Some(finish_join(&mut g.slots))
                    } else {
                        None
                    }
                };
                if let Some((values, level)) = done {
                    let _ = h.close(values, level);
                }
            });
            let h_e = handle.clone();
            items[i].on_error(move |e: &Error| {
                let _ = h_e.fail(e.clone());
            });
        }
        out
    }

    /// Races many Correctables: the result closes with the first final view
    /// to arrive. It fails only if every input fails.
    pub fn first_final(items: Vec<Correctable<T>>) -> Correctable<T> {
        let (out, handle) = Correctable::<T>::pending();
        let n = items.len();
        if n == 0 {
            let _ = handle.fail(Error::Unavailable("first_final of no inputs".into()));
            return out;
        }
        let errors = Arc::new(Mutex::new(0usize));
        for item in &items {
            let h = handle.clone();
            item.on_final(move |v: &View<T>| {
                let _ = h.close(v.value.clone(), v.level);
            });
            let h_e = handle.clone();
            let errs = Arc::clone(&errors);
            item.on_error(move |e: &Error| {
                let mut g = errs.lock();
                *g += 1;
                if *g == n {
                    let _ = h_e.fail(e.clone());
                }
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correctable::State;
    use crate::level::ConsistencyLevel;
    const CAUSAL: ConsistencyLevel = ConsistencyLevel::CAUSAL;
    const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;
    const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
    #[test]
    fn map_transforms_updates_and_final() {
        let (c, h) = Correctable::<i32>::pending();
        let m = c.map(|x| x * 2);
        h.update(1, WEAK).unwrap();
        assert_eq!(m.latest().unwrap().value, 2);
        assert_eq!(m.latest().unwrap().level, WEAK);
        h.close(3, STRONG).unwrap();
        assert_eq!(m.final_view().unwrap().value, 6);
    }

    #[test]
    fn map_propagates_error() {
        let (c, h) = Correctable::<i32>::pending();
        let m = c.map(|x| *x);
        h.fail(Error::Timeout).unwrap();
        assert_eq!(m.state(), State::Error);
    }

    #[test]
    fn then_chains_on_final() {
        let (c, h) = Correctable::<i32>::pending();
        let t = c.then(|v| Correctable::ready(v.value + 100));
        h.update(1, WEAK).unwrap();
        assert_eq!(t.state(), State::Updating);
        h.close(2, STRONG).unwrap();
        assert_eq!(t.final_view().unwrap().value, 102);
    }

    #[test]
    fn then_propagates_inner_error() {
        let (c, h) = Correctable::<i32>::pending();
        let t: Correctable<i32> = c.then(|_| Correctable::failed(Error::Aborted));
        h.close(1, STRONG).unwrap();
        assert_eq!(t.error(), Some(Error::Aborted));
    }

    #[test]
    fn join_all_waits_for_everything_in_order() {
        let (a, ha) = Correctable::<i32>::pending();
        let (b, hb) = Correctable::<i32>::pending();
        let j = Correctable::join_all(vec![a, b]);
        hb.close(2, STRONG).unwrap();
        assert_eq!(j.state(), State::Updating);
        ha.close(1, STRONG).unwrap();
        assert_eq!(j.final_view().unwrap().value, vec![1, 2]);
    }

    #[test]
    fn join_all_level_is_weakest() {
        let (a, ha) = Correctable::<i32>::pending();
        let (b, hb) = Correctable::<i32>::pending();
        let j = Correctable::join_all(vec![a, b]);
        ha.close(1, STRONG).unwrap();
        hb.close(2, CAUSAL).unwrap();
        assert_eq!(j.final_view().unwrap().level, CAUSAL);
    }

    #[test]
    fn join_all_empty_closes_immediately() {
        let j = Correctable::<i32>::join_all(vec![]);
        assert_eq!(j.final_view().unwrap().value, Vec::<i32>::new());
    }

    #[test]
    fn join_all_fails_fast() {
        let (a, ha) = Correctable::<i32>::pending();
        let (b, _hb) = Correctable::<i32>::pending();
        let j = Correctable::join_all(vec![a, b]);
        ha.fail(Error::Timeout).unwrap();
        assert_eq!(j.state(), State::Error);
    }

    #[test]
    fn first_final_takes_the_winner() {
        let (a, _ha) = Correctable::<i32>::pending();
        let (b, hb) = Correctable::<i32>::pending();
        let r = Correctable::first_final(vec![a, b]);
        hb.close(7, WEAK).unwrap();
        assert_eq!(r.final_view().unwrap().value, 7);
    }

    #[test]
    fn first_final_fails_only_when_all_fail() {
        let (a, ha) = Correctable::<i32>::pending();
        let (b, hb) = Correctable::<i32>::pending();
        let r = Correctable::first_final(vec![a, b]);
        ha.fail(Error::Timeout).unwrap();
        assert_eq!(r.state(), State::Updating);
        hb.fail(Error::Aborted).unwrap();
        assert_eq!(r.state(), State::Error);
    }
}
