//! Coverage for the `correctable.rs` contract that **callbacks never run
//! while internal locks are held**: registering `on_update` callbacks
//! concurrently with (and from inside) in-flight deliveries must neither
//! deadlock nor lose, duplicate, or reorder views.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use correctables::ConsistencyLevel;

const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;

const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
use correctables::Correctable;
use parking_lot::Mutex;

/// Observers registered from other threads while a producer is delivering
/// views must each see the complete preliminary history, in order, with
/// no duplicates — whether they registered before, during, or after the
/// deliveries.
#[test]
fn concurrent_registration_sees_full_history_in_order() {
    const VIEWS: usize = 200;
    const OBSERVERS: u64 = 4;
    for round in 0..10 {
        let (c, h) = Correctable::<usize>::pending();
        let producer = thread::spawn(move || {
            for i in 0..VIEWS {
                h.update(i, WEAK).unwrap();
            }
            h.close(VIEWS, STRONG).unwrap();
        });
        let mut observers = Vec::new();
        let mut registrars = Vec::new();
        for t in 0..OBSERVERS {
            let c2 = c.clone();
            let seen = Arc::new(Mutex::new(Vec::new()));
            observers.push(Arc::clone(&seen));
            registrars.push(thread::spawn(move || {
                // Stagger so registrations land at different points of the
                // delivery stream (including mid-pump). This sleep is a
                // best-effort spread, not synchronization: the assertions
                // below hold wherever the registration lands (replay
                // guarantees the full history), so scheduling jitter can
                // shift coverage but never outcomes.
                thread::sleep(Duration::from_micros(20 * t));
                c2.on_update(move |v| seen.lock().push(v.value));
            }));
        }
        producer.join().unwrap();
        for r in registrars {
            r.join().unwrap();
        }
        for (i, seen) in observers.iter().enumerate() {
            let seen = seen.lock();
            assert_eq!(
                *seen,
                (0..VIEWS).collect::<Vec<_>>(),
                "observer {i} of round {round} missed or reordered views"
            );
        }
    }
}

/// While one callback is running (a delivery is in flight), another
/// thread must be able to register a new `on_update` and have it replay
/// history to completion. If deliveries held the internal lock across
/// callbacks, the helper thread would deadlock here.
#[test]
fn registration_while_delivery_in_flight_does_not_block() {
    let (c, h) = Correctable::<u32>::pending();
    let helper_done = Arc::new(AtomicBool::new(false));
    let helper_saw = Arc::new(Mutex::new(Vec::new()));

    let c2 = c.clone();
    let done = Arc::clone(&helper_done);
    let saw = Arc::clone(&helper_saw);
    c.on_update(move |v| {
        if v.value != 1 {
            return;
        }
        // From inside the in-flight delivery of view 1, register a second
        // callback on a different thread and wait for it to finish its
        // replay — possible only because no internal lock is held here.
        let reg_c = c2.clone();
        let reg_saw = Arc::clone(&saw);
        let reg_done = Arc::clone(&done);
        thread::spawn(move || {
            reg_c.on_update(move |v| reg_saw.lock().push(v.value));
            reg_done.store(true, Ordering::SeqCst);
        })
        .join()
        .unwrap();
    });

    h.update(1, WEAK).unwrap();
    assert!(helper_done.load(Ordering::SeqCst));
    // The late observer replayed the view whose delivery was in flight.
    assert_eq!(*helper_saw.lock(), vec![1]);
    h.update(2, WEAK).unwrap();
    h.close(3, STRONG).unwrap();
    // And it keeps receiving subsequent views exactly once, in order.
    assert_eq!(*helper_saw.lock(), vec![1, 2]);
}
