//! Coverage for the allocation-lean fast paths: callback registration
//! racing live delivery under the slimmed (state-word + parked slow path)
//! wakeup protocol, `join_all` over mixed already-closed/pending inputs,
//! and `Upcall::for_levels`' cached filter dropping exactly the
//! non-requested levels.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use correctables::ConsistencyLevel;

const CACHE: ConsistencyLevel = ConsistencyLevel::CACHE;

const CAUSAL: ConsistencyLevel = ConsistencyLevel::CAUSAL;

const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;

const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
use correctables::{Correctable, Error, State, Upcall, View};

/// Registering update callbacks from one thread while another delivers
/// views must lose nothing: every callback sees every view exactly once,
/// in order, regardless of how registration interleaves with delivery.
#[test]
fn registration_races_delivery_without_losing_views() {
    const VIEWS: i32 = 200;
    const CALLBACKS: usize = 8;
    for round in 0..20 {
        let (c, h) = Correctable::<i32>::pending();
        let producer = std::thread::spawn(move || {
            for i in 0..VIEWS {
                h.update(i, WEAK).unwrap();
                if i % 50 == round % 50 {
                    std::thread::yield_now();
                }
            }
            h.close(VIEWS, STRONG).unwrap();
        });
        let logs: Vec<Arc<Mutex<Vec<i32>>>> = (0..CALLBACKS)
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();
        for log in &logs {
            let l = Arc::clone(log);
            c.on_update(move |v: &View<i32>| l.lock().push(v.value));
            std::thread::yield_now();
        }
        producer.join().unwrap();
        // All deliveries have completed (close happens after every update
        // and update callbacks are pumped to completion synchronously on
        // whichever thread holds the work).
        assert_eq!(c.state(), State::Final);
        for log in &logs {
            let got = log.lock().clone();
            assert_eq!(got, (0..VIEWS).collect::<Vec<_>>(), "round {round}");
        }
    }
}

/// A blocked waiter must still be woken through the parked slow path when
/// the producer closes from another thread (the state word only skips
/// notification when nobody ever waited).
#[test]
fn parked_waiters_are_woken_after_callback_only_traffic() {
    for _ in 0..50 {
        let (c, h) = Correctable::<u64>::pending();
        // Callback-only traffic first, so the producer's no-waiter fast
        // path has been exercised before anyone parks.
        c.on_update(|_| {});
        h.update(1, WEAK).unwrap();
        let waiter = std::thread::spawn(move || c.wait_final(Duration::from_secs(10)));
        // Give the waiter a moment to park.
        std::thread::yield_now();
        h.update(2, CAUSAL).unwrap();
        h.close(3, STRONG).unwrap();
        let v = waiter.join().unwrap().expect("waiter must wake");
        assert_eq!((v.value, v.level), (3, STRONG));
    }
}

#[test]
fn wait_any_wakes_on_preliminary_after_parking() {
    let (c, h) = Correctable::<u64>::pending();
    let waiter = std::thread::spawn(move || c.wait_any(Duration::from_secs(10)));
    std::thread::sleep(Duration::from_millis(5));
    h.update(9, WEAK).unwrap();
    let v = waiter.join().unwrap().expect("wait_any must wake");
    assert_eq!((v.value, v.level), (9, WEAK));
}

/// `join_all` over a mix of already-closed and still-pending inputs: the
/// closed ones are harvested synchronously, the pending ones via
/// callbacks, and the result preserves input order and weakest level.
#[test]
fn join_all_mixed_closed_and_pending() {
    let ready_strong = Correctable::ready(10u64);
    let ready_weak = Correctable::ready_at(20u64, WEAK);
    let (pending_a, ha) = Correctable::<u64>::pending();
    let (pending_b, hb) = Correctable::<u64>::pending();
    let joined = Correctable::join_all(vec![ready_strong, pending_a, ready_weak, pending_b]);
    assert_eq!(joined.state(), State::Updating);
    hb.close(40, STRONG).unwrap();
    assert_eq!(joined.state(), State::Updating);
    ha.close(30, STRONG).unwrap();
    let v = joined.final_view().expect("all inputs closed");
    assert_eq!(v.value, vec![10, 30, 20, 40]);
    // The weakest input view (the ready-at-WEAK one) bounds the level.
    assert_eq!(v.level, WEAK);
}

#[test]
fn join_all_all_closed_closes_synchronously() {
    let joined = Correctable::join_all(vec![
        Correctable::ready(1),
        Correctable::ready_at(2, CAUSAL),
        Correctable::ready(3),
    ]);
    let v = joined.final_view().expect("closed without any callback");
    assert_eq!(v.value, vec![1, 2, 3]);
    assert_eq!(v.level, CAUSAL);
}

#[test]
fn join_all_with_already_failed_input_fails_immediately() {
    let (open, _h) = Correctable::<i32>::pending();
    let joined = Correctable::join_all(vec![
        Correctable::ready(1),
        Correctable::failed(Error::Aborted),
        open,
    ]);
    assert_eq!(joined.state(), State::Error);
    assert_eq!(joined.error(), Some(Error::Aborted));
}

#[test]
fn join_all_pending_input_failing_later_fails_the_join() {
    let (open, h) = Correctable::<i32>::pending();
    let joined = Correctable::join_all(vec![Correctable::ready(1), open]);
    assert_eq!(joined.state(), State::Updating);
    h.fail(Error::Timeout).unwrap();
    assert_eq!(joined.error(), Some(Error::Timeout));
}

/// The cached filter in `Upcall::for_levels` must drop exactly the
/// non-requested levels: for every subset of levels requested, deliveries
/// at requested non-strongest levels surface as preliminaries, deliveries
/// at non-requested levels below the strongest vanish, and anything at or
/// above the strongest closes.
#[test]
fn for_levels_cached_filter_drops_exactly_the_non_requested_levels() {
    let all = [CACHE, WEAK, CAUSAL, STRONG];
    // Every non-empty subset of the four levels.
    for mask in 1u32..16 {
        let requested: Vec<_> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, l)| *l)
            .collect();
        let strongest = *requested.last().unwrap();

        let (c, h) = Correctable::<u8>::pending();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        c.on_update(move |v: &View<u8>| s.lock().push(v.level));
        let up = Upcall::for_levels(h, &requested);
        assert_eq!(up.strongest(), strongest);

        // A binding that over-delivers at every known level, weakest first.
        for l in all {
            up.deliver(l.rank(), l);
        }

        // Preliminaries: exactly the requested levels below the strongest,
        // in delivery order.
        let expect_prelims: Vec<_> = requested
            .iter()
            .copied()
            .filter(|l| *l != strongest)
            .collect();
        assert_eq!(*seen.lock(), expect_prelims, "requested {requested:?}");
        assert_eq!(
            c.preliminary_views().len(),
            expect_prelims.len(),
            "requested {requested:?}"
        );
        // The close happened at the strongest requested level.
        let fv = c.final_view().expect("strongest level closes");
        assert_eq!(fv.level, strongest, "requested {requested:?}");
    }
}

/// Late deliveries after the close are dropped without reaching update
/// callbacks, whatever their level.
#[test]
fn post_close_deliveries_are_dropped_at_every_level() {
    let (c, h) = Correctable::<u8>::pending();
    let updates = Arc::new(AtomicUsize::new(0));
    let n = Arc::clone(&updates);
    c.on_update(move |_| {
        n.fetch_add(1, Ordering::SeqCst);
    });
    let up = Upcall::for_levels(h, &[WEAK, CAUSAL, STRONG]);
    up.deliver(1, STRONG);
    for l in [CACHE, WEAK, CAUSAL, STRONG] {
        up.deliver(9, l);
    }
    up.fail(Error::Timeout);
    assert_eq!(updates.load(Ordering::SeqCst), 0);
    assert_eq!(c.final_view().unwrap().value, 1);
}
