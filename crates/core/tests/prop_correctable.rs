//! Property-based tests of the Correctable state machine (Figure 3).
//!
//! Flakiness audit: fully synchronous — no threads, sleeps, or
//! timeouts; every case is a deterministic function of the generated
//! actions (and the vendored proptest shim derives its seed from the
//! test name, so CI runs are reproducible).

use proptest::prelude::*;

use correctables::{ConsistencyLevel, Correctable, Error, State};
use parking_lot::Mutex;
use std::sync::Arc;

/// Producer-side actions a binding might perform, in arbitrary order.
#[derive(Clone, Debug)]
enum Action {
    Update(i64),
    Close(i64),
    Fail,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => any::<i64>().prop_map(Action::Update),
        1 => any::<i64>().prop_map(Action::Close),
        1 => Just(Action::Fail),
    ]
}

proptest! {
    /// Whatever a producer does, the state machine admits at most one
    /// closing transition, preliminary views precede it, and the final
    /// state is immutable.
    #[test]
    fn at_most_one_close_and_views_are_stable(
        actions in proptest::collection::vec(action_strategy(), 1..40)
    ) {
        let (c, h) = Correctable::<i64>::pending();
        let mut expected_updates = Vec::new();
        let mut closed: Option<Result<i64, ()>> = None;
        for a in &actions {
            match a {
                Action::Update(v) => {
                    let r = h.update(*v, ConsistencyLevel::WEAK);
                    if closed.is_none() {
                        prop_assert!(r.is_ok());
                        expected_updates.push(*v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Action::Close(v) => {
                    let r = h.close(*v, ConsistencyLevel::STRONG);
                    if closed.is_none() {
                        prop_assert!(r.is_ok());
                        closed = Some(Ok(*v));
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Action::Fail => {
                    let r = h.fail(Error::Aborted);
                    if closed.is_none() {
                        prop_assert!(r.is_ok());
                        closed = Some(Err(()));
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
            }
        }
        // Observed views equal the accepted preliminary sequence.
        let seen: Vec<i64> = c.preliminary_views().iter().map(|v| v.value).collect();
        prop_assert_eq!(seen, expected_updates);
        match closed {
            Some(Ok(v)) => {
                prop_assert_eq!(c.state(), State::Final);
                prop_assert_eq!(c.final_view().unwrap().value, v);
            }
            Some(Err(())) => {
                prop_assert_eq!(c.state(), State::Error);
                prop_assert_eq!(c.error(), Some(Error::Aborted));
            }
            None => prop_assert_eq!(c.state(), State::Updating),
        }
    }

    /// Callbacks observe exactly the accepted views, in order, regardless
    /// of when they are registered (before, during, or after delivery).
    #[test]
    fn callbacks_see_all_views_in_order(
        values in proptest::collection::vec(any::<i64>(), 0..20),
        fin in any::<i64>(),
        register_at in 0usize..21,
    ) {
        let (c, h) = Correctable::<i64>::pending();
        let log = Arc::new(Mutex::new(Vec::new()));
        let attach = |log: &Arc<Mutex<Vec<i64>>>, c: &Correctable<i64>| {
            let l = Arc::clone(log);
            c.on_update(move |v| l.lock().push(v.value));
        };
        let mut attached = false;
        for (i, v) in values.iter().enumerate() {
            if i == register_at {
                attach(&log, &c);
                attached = true;
            }
            h.update(*v, ConsistencyLevel::WEAK).unwrap();
        }
        if !attached {
            attach(&log, &c);
        }
        h.close(fin, ConsistencyLevel::STRONG).unwrap();
        prop_assert_eq!(log.lock().clone(), values);
    }

    /// `speculate` always produces `spec(final_value)` no matter which
    /// preliminary views preceded it.
    #[test]
    fn speculation_result_equals_function_of_final(
        prelims in proptest::collection::vec(-100i64..100, 0..10),
        fin in -100i64..100,
    ) {
        let (c, h) = Correctable::<i64>::pending();
        let out = c.speculate(|x| x.wrapping_mul(3) ^ 0x55);
        for p in &prelims {
            h.update(*p, ConsistencyLevel::WEAK).unwrap();
        }
        h.close(fin, ConsistencyLevel::STRONG).unwrap();
        prop_assert_eq!(out.final_view().unwrap().value, fin.wrapping_mul(3) ^ 0x55);
    }

    /// `map` commutes with view delivery.
    #[test]
    fn map_commutes_with_views(
        prelims in proptest::collection::vec(any::<i32>(), 0..10),
        fin in any::<i32>(),
    ) {
        let (c, h) = Correctable::<i32>::pending();
        let mapped = c.map(|x| i64::from(*x) + 1);
        for p in &prelims {
            h.update(*p, ConsistencyLevel::WEAK).unwrap();
        }
        h.close(fin, ConsistencyLevel::STRONG).unwrap();
        let got: Vec<i64> = mapped.preliminary_views().iter().map(|v| v.value).collect();
        let want: Vec<i64> = prelims.iter().map(|p| i64::from(*p) + 1).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(mapped.final_view().unwrap().value, i64::from(fin) + 1);
    }

    /// `join_all` preserves order and closes exactly when all inputs do.
    #[test]
    fn join_all_orders_results(values in proptest::collection::vec(any::<i64>(), 1..12)) {
        let pairs: Vec<_> = values.iter().map(|_| Correctable::<i64>::pending()).collect();
        let joined = Correctable::join_all(pairs.iter().map(|(c, _)| c.clone()).collect());
        // Close in reverse order; the aggregate must still be input-ordered.
        for (i, (_, h)) in pairs.iter().enumerate().rev() {
            prop_assert_eq!(joined.is_closed(), false);
            h.close(values[i], ConsistencyLevel::STRONG).unwrap();
        }
        prop_assert_eq!(joined.final_view().unwrap().value, values);
    }
}
