//! Sharded simulation stacks: the `icg-shard` routing layer assembled
//! over the paper's simulated substrates.
//!
//! Each shard is one complete simulated deployment (its own replicas,
//! gateway, and virtual clock) and keeps its own incremental-consistency
//! pipeline; the router fans keyed operations out across shards and
//! merges per-level views. [`ShardedSimStore::settle`] drives every
//! shard's engine until the whole fleet is quiescent, including ops that
//! callbacks submit mid-settle (speculative chains route like first-class
//! traffic).

use correctables::{Binding, KeyedOp};

use causalstore::{CacheOp, CausalBinding, SimCausal};
use icg_shard::{PipelineConfig, ShardedBinding};
use quorumstore::{Key, QuorumBinding, ReplicaConfig, SimStore, StoreOp, Value};

/// Virtual nodes per shard used by the facade stacks.
pub const VNODES: usize = 64;

/// Drives a fleet to quiescence: drain the pipeline queues, run one
/// settle pass over every shard, and repeat until a full pass routes no
/// new ops (callbacks running mid-settle may submit more work — possibly
/// to shards that already settled this pass).
fn settle_fleet<B>(binding: &ShardedBinding<B>, settle_pass: impl Fn())
where
    B: Binding,
    B::Op: KeyedOp,
{
    let mut before: u64 = binding.routed_per_shard().iter().sum();
    loop {
        binding.quiesce();
        settle_pass();
        let after: u64 = binding.routed_per_shard().iter().sum();
        if after == before {
            return;
        }
        before = after;
    }
}

/// A fleet of quorum-store deployments behind one sharded binding.
pub struct ShardedSimStore {
    binding: ShardedBinding<QuorumBinding>,
    stores: Vec<SimStore>,
}

impl ShardedSimStore {
    /// Builds `shards` independent FRK/IRL/VRG deployments (client
    /// gateway in IRL, coordinator in FRK — the paper's §6.1 setup) with
    /// inline routing.
    pub fn ec2(shards: usize, r_strong: u8, confirm: bool, seed: u64) -> ShardedSimStore {
        ShardedSimStore::ec2_with(shards, r_strong, confirm, seed, None)
    }

    /// As [`ShardedSimStore::ec2`], routing through per-shard batching
    /// workers when `pipeline` is set.
    pub fn ec2_with(
        shards: usize,
        r_strong: u8,
        confirm: bool,
        seed: u64,
        pipeline: Option<PipelineConfig>,
    ) -> ShardedSimStore {
        let stores: Vec<SimStore> = (0..shards)
            .map(|i| {
                SimStore::ec2(
                    ReplicaConfig::default(),
                    r_strong,
                    confirm,
                    "IRL",
                    0,
                    seed.wrapping_add(i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            })
            .collect();
        let bindings: Vec<QuorumBinding> = stores.iter().map(|s| s.binding()).collect();
        let binding = match pipeline {
            Some(cfg) => ShardedBinding::pipelined(bindings, VNODES, seed, cfg),
            None => ShardedBinding::inline(bindings, VNODES, seed),
        };
        ShardedSimStore { binding, stores }
    }

    /// The sharded Correctables binding over the fleet.
    pub fn binding(&self) -> ShardedBinding<QuorumBinding> {
        self.binding.clone()
    }

    /// Seeds each record on the replicas of the shard that owns its key.
    pub fn preload<I>(&self, records: I)
    where
        I: IntoIterator<Item = (Key, Value)>,
    {
        for (key, value) in records {
            let idx = self
                .binding
                .ring()
                .owner_index(StoreOp::Read(key).object_id());
            self.stores[idx].preload([(key, value)]);
        }
    }

    /// The `SimStore` backing shard `idx` (metrics, clocks, bandwidth).
    pub fn store(&self, idx: usize) -> &SimStore {
        &self.stores[idx]
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.stores.len()
    }

    /// Drives every shard's simulation until all submitted operations —
    /// including ops submitted by callbacks while other shards settle —
    /// have resolved.
    pub fn settle(&self) {
        settle_fleet(&self.binding, || {
            for s in &self.stores {
                s.settle();
            }
        });
    }
}

/// A fleet of cached causal deployments behind one sharded binding.
pub struct ShardedSimCausal {
    binding: ShardedBinding<CausalBinding>,
    stores: Vec<SimCausal>,
}

impl ShardedSimCausal {
    /// Builds `shards` news-reader deployments (primary VRG, client IRL)
    /// with inline routing.
    pub fn ec2(shards: usize, seed: u64) -> ShardedSimCausal {
        let stores: Vec<SimCausal> = (0..shards)
            .map(|i| {
                SimCausal::ec2(
                    "VRG",
                    "IRL",
                    seed.wrapping_add(i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            })
            .collect();
        let bindings: Vec<CausalBinding> = stores.iter().map(|s| s.binding()).collect();
        let binding = ShardedBinding::inline(bindings, VNODES, seed);
        ShardedSimCausal { binding, stores }
    }

    /// The sharded Correctables binding over the fleet.
    pub fn binding(&self) -> ShardedBinding<CausalBinding> {
        self.binding.clone()
    }

    /// Seeds a key (replicas + cache) on the shard that owns it.
    pub fn seed(&self, key: &str, rev: u64, items: Vec<u64>) {
        self.owning_store(key).seed(key, rev, items);
    }

    /// Publishes fresher data at the owning shard's primary (models other
    /// users writing; backups receive it causally).
    pub fn publish(&self, key: &str, items: Vec<u64>) {
        self.owning_store(key).publish(key, items);
    }

    /// The `SimCausal` backing shard `idx`.
    pub fn store(&self, idx: usize) -> &SimCausal {
        &self.stores[idx]
    }

    /// Drives every shard's simulation until all submitted operations
    /// have resolved.
    pub fn settle(&self) {
        settle_fleet(&self.binding, || {
            for s in &self.stores {
                s.settle();
            }
        });
    }

    fn owning_store(&self, key: &str) -> &SimCausal {
        let idx = self
            .binding
            .ring()
            .owner_index(CacheOp::Get(key.to_string()).object_id());
        &self.stores[idx]
    }
}
