//! # icg — Incremental Consistency Guarantees for Replicated Objects
//!
//! A from-scratch Rust reproduction of Guerraoui, Pavlovic, and
//! Seredinschi, *Incremental Consistency Guarantees for Replicated
//! Objects* (OSDI 2016): the **Correctables** abstraction, the storage
//! substrates it was evaluated on (a Cassandra-model quorum store, a
//! ZooKeeper-model coordination service, a cached causal store), the YCSB
//! workloads, the three case-study applications, and a harness
//! regenerating every figure of the paper's evaluation.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! - [`correctables`] — the abstraction (Correctable, speculate, bindings);
//! - [`simnet`] — the deterministic discrete-event WAN simulator;
//! - [`quorumstore`] — Correctable Cassandra (CC, *CC);
//! - [`consensusq`] — Correctable ZooKeeper (CZK) and replicated queues;
//! - [`causalstore`] — causal replication with a client cache;
//! - [`crdt`] — coordination-free CRDT bindings (GCounter/PN, OR-Set,
//!   LWW-Map), SEC-checkable replication, escrow-segmented tickets;
//! - [`shard`] — the sharded multi-object routing layer;
//! - [`net`] — the TCP wire codec, transport, replica server, and
//!   client binding serving the quorum store over real sockets;
//! - [`oracle`] — the history-recording consistency oracle
//!   and seeded fault-schedule explorer;
//! - [`ycsb`] — workload generators;
//! - [`blockchain`] — confirmation-depth views (§4.5's multi-view case);
//! - [`apps`] — ads, Twissandra, tickets, news reader.
//!
//! [`sharded`] assembles the routing layer with the simulated substrates:
//! ready-made multi-shard SimStore / SimCausal stacks.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub mod sharded;

pub use blockchain;
pub use causalstore;
pub use consensusq;
pub use correctables;
pub use icg_apps as apps;
pub use icg_crdt as crdt;
pub use icg_net as net;
pub use icg_oracle as oracle;
pub use icg_shard as shard;
pub use quorumstore;
pub use simnet;
pub use ycsb;
