//! Offline shim for the `rand` crate implementing the subset of the 0.8
//! API this workspace uses (see `vendor/README.md`).
//!
//! The only generator is [`rngs::SmallRng`], implemented as xoshiro256++
//! seeded through SplitMix64 — the same algorithm family the real
//! `SmallRng` uses on 64-bit platforms, so statistical quality is
//! comparable and all draws are deterministic functions of the seed.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// A small, fast, deterministic PRNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::SmallRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // All-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        SmallRng { s }
    }

    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`] (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(reject_sample(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(reject_sample(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // 53-bit grid over [lo, hi]; the endpoint is reachable.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

/// Unbiased uniform draw in `[0, span)` by rejection (Lemire-style
/// threshold on the modulus).
#[inline]
fn reject_sample<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// The parts of `rand::Rng` this workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample(self) < p
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0..=5usize);
            assert!(y <= 5);
            let z = r.gen_range(-100i64..100);
            assert!((-100..100).contains(&z));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
