//! Strategies: how test-case values are generated from a [`TestRng`].
//!
//! A [`Strategy`] maps random bits to a value. Ranges over primitive
//! ints/floats are strategies; so are tuples of strategies, [`Just`],
//! `any::<T>()`, weighted unions (`prop_oneof!`), mapped strategies
//! (`prop_map`), and vectors (`collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase, for storage in unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted union built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

// ---- Ranges over primitives -------------------------------------------

// Delegate all range sampling to the rand shim's `SampleRange`
// machinery (one home for the rejection/wrapping arithmetic).
impl<T> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rand::SampleRange::sample_from(self.clone(), rng)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rand::SampleRange::sample_from(self.clone(), rng)
    }
}

// ---- `any` -------------------------------------------------------------

/// Types with a canonical "whole domain" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spanning sign and magnitude.
        rng.next_f64() * 2e6 - 1e6
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---- Tuples ------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

// ---- Vectors -----------------------------------------------------------

/// Length bound for `collection::vec`: a fixed size or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (0.25f64..=0.75).generate(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn union_respects_zero_weight_absence() {
        let mut rng = TestRng::seed_from_u64(2);
        let u = Union::new(vec![(1u32, Just(1i32).boxed()), (3u32, Just(2i32).boxed())]);
        let mut saw = [0u32; 3];
        for _ in 0..1000 {
            saw[u.generate(&mut rng) as usize - 1] += 1;
        }
        assert!(saw[0] > 100 && saw[1] > 500, "{saw:?}");
    }

    #[test]
    fn vec_lengths_in_bounds() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = VecStrategy {
            element: 0u64..10,
            size: SizeRange::from(2usize..5),
        };
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let fixed = VecStrategy {
            element: 0u64..10,
            size: SizeRange::from(4usize),
        };
        assert_eq!(fixed.generate(&mut rng).len(), 4);
    }
}
