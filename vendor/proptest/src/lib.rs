//! Offline shim for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, the [`strategy::Strategy`] trait over ranges,
//! tuples, [`strategy::Just`], `any::<T>()`, `prop_oneof!`, `prop_map`,
//! and `collection::vec`, plus `prop_assert!`-family macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its case number and the
//!   test's base seed; rerun with `PROPTEST_SEED=<seed>` to replay.
//! - **Deterministic by default.** The base seed is derived from the test
//!   name, so CI runs are reproducible; set `PROPTEST_SEED` to explore.
//! - `PROPTEST_CASES` overrides the per-test case count (default 96).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// `proptest::collection::vec` — a strategy for vectors whose length
    /// is drawn from `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The entry-point macro: wraps each `fn name(args in strategies) { .. }`
/// into a function running the body over generated cases. As with
/// upstream proptest, the `#[test]` attribute is written inside the
/// block by the caller and passed through to the generated function —
/// omitting it yields a plain callable, not a test.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__pt_rng| {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), __pt_rng);
                    )+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Weighted (`w => strategy`) or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a proptest body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}
