//! Case generation and execution for the [`proptest!`](crate::proptest)
//! macro: a deterministic RNG (the vendored `rand` shim's xoshiro256++)
//! and a fixed-count runner with per-case panic capture.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Failure raised by `prop_assert!` family macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Unbiased uniform draw in `[0, span)`; `span > 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        self.inner.gen_range(0..span)
    }
}

// Strategies sample ranges through the rand shim's `SampleRange`
// machinery rather than reimplementing the rejection/wrapping
// arithmetic here.
impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// FNV-1a, used to give every test a distinct deterministic base seed.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` for a fixed number of generated inputs, panicking (like
/// `assert!`) on the first failing case with enough detail to replay it.
pub fn run(test_name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let cases = env_u64("PROPTEST_CASES").unwrap_or(96);
    let base_seed = env_u64("PROPTEST_SEED").unwrap_or_else(|| hash_name(test_name));
    for i in 0..cases {
        // Case `i` runs on `base ^ (i * golden)`; case 0 on `base` itself,
        // so replaying with PROPTEST_SEED=<case_seed> PROPTEST_CASES=1
        // reproduces any failing case exactly, whatever `cases` was.
        let case_seed = base_seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::seed_from_u64(case_seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        let detail = match outcome {
            Ok(Ok(())) => continue,
            Ok(Err(e)) => e.message,
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".to_string());
                format!("panicked: {msg}")
            }
        };
        panic!(
            "proptest `{test_name}` failed at case {i}/{cases} \
             (replay with PROPTEST_SEED={case_seed} PROPTEST_CASES=1): {detail}"
        );
    }
}
