//! Offline shim for the `parking_lot` crate (see `vendor/README.md`):
//! poison-free `Mutex`/`RwLock`/`Condvar` facades over `std::sync` with
//! parking_lot's guard-returning API. Poisoned std locks are recovered
//! with `into_inner` — parking_lot has no poisoning, so neither do we.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutex that hands back its guard directly (no `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard is kept in an `Option` so [`Condvar`] can take it
/// by value (std's wait API) while callers hold the wrapper by `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    pub fn wait_while<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }

    // Real parking_lot returns how many threads were woken; std cannot
    // report that, so return () rather than a fabricated count — callers
    // that would branch on it fail to compile instead of misbehaving.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with parking_lot's guard-returning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.inner.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.inner.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        // Guard must still be usable after the wait.
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
