//! Offline shim for the `criterion` crate (see `vendor/README.md`):
//! `criterion_group!` / `criterion_main!` / `Criterion::bench_function`
//! backed by a small warmup-then-measure loop.
//!
//! Each benchmark is timed in batches: after a warmup period the batch
//! size is calibrated so one batch takes roughly a millisecond, then
//! batches are sampled for the measurement period and per-iteration
//! nanoseconds are reported as mean / median / p95. `ICG_QUICK=1`
//! shortens both periods for smoke runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn quick() -> bool {
    std::env::var("ICG_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// Per-iteration nanoseconds for each measured batch.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup, counting iterations to calibrate the batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((1e-3 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        let run_start = Instant::now();
        while run_start.elapsed() < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch as f64);
        }
    }
}

/// Registry/runner handed to `criterion_group!` functions.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let (warmup, measure) = if quick() {
            (Duration::from_millis(50), Duration::from_millis(200))
        } else {
            (Duration::from_millis(300), Duration::from_secs(2))
        };
        Criterion { warmup, measure }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("{id:<40} (no samples)");
            return self;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let median = s[s.len() / 2];
        let p95 = s[((s.len() as f64 * 0.95) as usize).min(s.len() - 1)];
        println!(
            "{id:<40} mean {mean:>12.1} ns/iter   median {median:>12.1}   p95 {p95:>12.1}   ({} samples)",
            s.len()
        );
        self
    }
}

/// `criterion_group!(name, target1, target2, ...)` — declares a function
/// running every target against a fresh default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group1, group2, ...)` — the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
