//! Offline shim for the `criterion` crate (see `vendor/README.md`):
//! `criterion_group!` / `criterion_main!` / `Criterion::bench_function`
//! backed by a small warmup-then-measure loop.
//!
//! Each benchmark is timed in batches: after a warmup period the batch
//! size is calibrated so one batch takes roughly a millisecond, then
//! batches are sampled for the measurement period and per-iteration
//! nanoseconds are reported as mean / median / p95.
//!
//! ## Environment knobs
//!
//! - `ICG_QUICK=1` — abbreviated smoke run (50 ms warmup, 200 ms measure).
//! - `ICG_WARMUP_MS` / `ICG_MEASURE_MS` — explicit periods in
//!   milliseconds, overriding both the default and `ICG_QUICK` (the CI
//!   perf gate uses these to trade a little wall time for stability).
//! - `ICG_BENCH_JSON=<path>` — append one JSON object per benchmark to
//!   `<path>` (JSON Lines), carrying the suite name, benchmark id, and
//!   mean/median/p95 nanoseconds. `scripts/bench_json.sh` merges these
//!   lines into the committed `BENCH_*.json` trajectory files.
//! - `ICG_BENCH_SUITE=<name>` — suite label for the JSON records; when
//!   unset, the label is derived from the bench binary's file stem.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn quick() -> bool {
    std::env::var("ICG_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

fn env_ms(name: &str) -> Option<Duration> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
}

/// The suite label for JSON records: `ICG_BENCH_SUITE`, or the bench
/// binary's file stem with cargo's trailing `-<hash>` stripped.
fn suite_label() -> String {
    if let Ok(s) = std::env::var("ICG_BENCH_SUITE") {
        if !s.is_empty() {
            return s;
        }
    }
    let stem = std::env::args()
        .next()
        .and_then(|p| {
            std::path::Path::new(&p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_default();
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ if !stem.is_empty() => stem,
        _ => "bench".to_string(),
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// Per-iteration nanoseconds for each measured batch.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup, counting iterations to calibrate the batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((1e-3 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        let run_start = Instant::now();
        while run_start.elapsed() < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch as f64);
        }
    }
}

/// One benchmark's summary statistics, in nanoseconds per iteration.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    pub mean_ns: f64,
    pub median_ns: f64,
    pub p95_ns: f64,
    pub samples: usize,
}

/// Registry/runner handed to `criterion_group!` functions.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    /// `(path, suite)` when `ICG_BENCH_JSON` is set.
    json: Option<(std::path::PathBuf, String)>,
}

impl Default for Criterion {
    fn default() -> Self {
        let (warmup, measure) = if quick() {
            (Duration::from_millis(50), Duration::from_millis(200))
        } else {
            (Duration::from_millis(300), Duration::from_secs(2))
        };
        let warmup = env_ms("ICG_WARMUP_MS").unwrap_or(warmup);
        let measure = env_ms("ICG_MEASURE_MS").unwrap_or(measure);
        let json = std::env::var("ICG_BENCH_JSON")
            .ok()
            .filter(|p| !p.is_empty())
            .map(|p| (std::path::PathBuf::from(p), suite_label()));
        Criterion {
            warmup,
            measure,
            json,
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("{id:<40} (no samples)");
            return self;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let stats = Stats {
            mean_ns: s.iter().sum::<f64>() / s.len() as f64,
            median_ns: s[s.len() / 2],
            p95_ns: s[((s.len() as f64 * 0.95) as usize).min(s.len() - 1)],
            samples: s.len(),
        };
        println!(
            "{id:<40} mean {:>12.1} ns/iter   median {:>12.1}   p95 {:>12.1}   ({} samples)",
            stats.mean_ns, stats.median_ns, stats.p95_ns, stats.samples
        );
        self.append_json(id, stats);
        self
    }

    /// Appends one JSON Lines record for a finished benchmark.
    fn append_json(&self, id: &str, stats: Stats) {
        let Some((path, suite)) = &self.json else {
            return;
        };
        let line = format!(
            "{{\"suite\":\"{}\",\"benchmark\":\"{}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\"p95_ns\":{:.1},\"samples\":{}}}\n",
            json_escape(suite),
            json_escape(id),
            stats.mean_ns,
            stats.median_ns,
            stats.p95_ns,
            stats.samples
        );
        let res = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = res {
            eprintln!("warning: failed to append bench JSON to {path:?}: {e}");
        }
    }
}

/// `criterion_group!(name, target1, target2, ...)` — declares a function
/// running every target against a fresh default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group1, group2, ...)` — the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
