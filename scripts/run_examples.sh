#!/usr/bin/env bash
# Smoke-runs every example to completion; fails on the first non-zero
# exit. CI runs this after the test suite (see .github/workflows/ci.yml).
set -euo pipefail

cd "$(dirname "$0")/.."

examples=(quickstart ad_serving bitcoin_watch news_reader reddit_messages ticket_sale sharded_counters oracle_explore)

for ex in "${examples[@]}"; do
    echo "=== example: $ex"
    cargo run --release --example "$ex"
done

echo "=== all ${#examples[@]} examples completed"
