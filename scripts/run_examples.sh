#!/usr/bin/env bash
# Smoke-runs every example to completion; fails on the first non-zero
# exit. Prints per-example wall time so CI logs show exactly which
# example regressed when the smoke test slows down. CI runs this after
# the test suite (see .github/workflows/ci.yml).
set -euo pipefail

cd "$(dirname "$0")/.."

examples=(quickstart ad_serving bitcoin_watch news_reader reddit_messages ticket_sale sharded_counters oracle_explore ticket_escrow)

total_start=$(date +%s%N)
for ex in "${examples[@]}"; do
    echo "=== example: $ex"
    start=$(date +%s%N)
    cargo run --release --example "$ex"
    elapsed_ms=$(( ($(date +%s%N) - start) / 1000000 ))
    echo "=== example: $ex finished in ${elapsed_ms} ms"
done
total_ms=$(( ($(date +%s%N) - total_start) / 1000000 ))

echo "=== all ${#examples[@]} examples completed in ${total_ms} ms"
