#!/usr/bin/env bash
# Runs the microbenchmark suites with JSON emission enabled and merges the
# per-benchmark records into one machine-readable trajectory file
# (schema: suites -> benchmark -> {mean_ns, median_ns, p95_ns, samples}).
#
# Usage: scripts/bench_json.sh [out.json]
#   out.json defaults to BENCH_PR4.json in the repository root.
#
# Honours the criterion shim's env knobs: ICG_QUICK=1 for an abbreviated
# run, ICG_WARMUP_MS / ICG_MEASURE_MS for explicit periods. The CI
# perf-gate job uses ICG_MEASURE_MS=800 as a stability/wall-time
# compromise, then compares the output against the committed baseline via
# `perf_gate compare`.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
# Absolute path: cargo runs bench binaries with the package directory as
# their working directory, not the workspace root.
lines="$(pwd)/target/bench_lines.jsonl"

suites=(micro_correctable micro_simnet micro_shard micro_crdt)

rm -f "$lines"
mkdir -p target

for suite in "${suites[@]}"; do
    echo "=== bench suite: $suite"
    ICG_BENCH_JSON="$lines" ICG_BENCH_SUITE="$suite" \
        cargo bench -p icg_bench --bench "$suite"
done

cargo run --release -q -p icg_bench --bin perf_gate -- merge "$lines" "$out"
