#!/usr/bin/env bash
# Runs the project-specific static analyzer (crates/lint) over the
# workspace. Thin wrapper so CI and developers invoke the same thing.
#
# Usage: scripts/lint.sh [check|report|baseline|unsafety]
#   check     (default) gate mode: exits nonzero on any finding not
#             covered by lint.baseline, or if UNSAFETY.md is stale
#   report    print every finding, baseline ignored, always exits 0
#   baseline  rewrite lint.baseline to accept the current tree (only
#             after a deliberate, reviewed decision)
#   unsafety  regenerate UNSAFETY.md from the current tree
#
# The pass configuration lives in lint.toml; waive individual sites in
# source with `// lint: allow(<pass>) — reason`. See DESIGN.md §11.
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-check}"
case "$mode" in
check | report | baseline | unsafety) ;;
*)
    echo "usage: scripts/lint.sh [check|report|baseline|unsafety]" >&2
    exit 2
    ;;
esac

exec cargo run -q -p icg-lint -- "$mode"
