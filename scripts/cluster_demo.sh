#!/usr/bin/env bash
# Boots a 3-replica quorum store on loopback TCP and drives it with
# icg-loadgen; exits green iff every operation completed. This is the
# one-command proof that the deployment layer serves real traffic —
# CI's net-smoke step runs it with --quick.
#
# Usage: scripts/cluster_demo.sh [--quick] [--kill] [--transport reactor|blocking]
#   --quick      abbreviated run (CI): fewer clients/ops, skips the ICG
#                latency-comparison pass
#   --kill       crash one replica mid-demo and run a second loadgen pass
#                against the surviving quorum (R=2 of 3 stays available)
#   --transport  I/O engine for both replicas and clients (default: the
#                epoll reactor)
#
# Ports: by default three free ports are probed from a randomized base,
# and boot is retried on a fresh base if another process steals one in
# the window between probe and bind — parallel CI jobs no longer flake
# on collisions. ICG_DEMO_PORT=5000 pins the base port (no reprobe).
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
KILL=0
TRANSPORT=reactor
while [ $# -gt 0 ]; do
    case "$1" in
        --quick) QUICK=1 ;;
        --kill) KILL=1 ;;
        --transport)
            shift
            [ $# -gt 0 ] || { echo "--transport needs a value" >&2; exit 2; }
            TRANSPORT="$1"
            ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done
case "$TRANSPORT" in
    reactor|blocking) ;;
    *) echo "--transport must be reactor|blocking, got '$TRANSPORT'" >&2; exit 2 ;;
esac

if [ "$QUICK" = 1 ]; then
    CLIENTS=2 OPS=300 KEYS=200
else
    CLIENTS=4 OPS=2000 KEYS=1000
fi

echo "=== building (release) ==="
cargo build --release -q -p icg_apps

REPLICAD=target/release/icg-replicad
LOADGEN=target/release/icg-loadgen

pids=()
cleanup() {
    for pid in "${pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
}
trap cleanup EXIT

# True iff nothing on loopback accepts a connection to $1.
port_free() {
    ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null
}

# Picks BASE_PORT: the pinned ICG_DEMO_PORT, or a random base whose
# three consecutive ports all look free right now.
pick_base() {
    if [ -n "${ICG_DEMO_PORT:-}" ]; then
        BASE_PORT="$ICG_DEMO_PORT"
        return
    fi
    for _ in $(seq 1 20); do
        BASE_PORT=$((20000 + RANDOM % 40000))
        if port_free "$BASE_PORT" && port_free $((BASE_PORT + 1)) \
            && port_free $((BASE_PORT + 2)); then
            return
        fi
    done
    echo "cannot find three free loopback ports" >&2
    exit 1
}

# Boots the 3 replicas on $BASE_PORT.. and waits until all of them
# accept connections. Returns nonzero if any replica dies first (port
# stolen between probe and bind).
boot_cluster() {
    P0="127.0.0.1:$BASE_PORT"
    P1="127.0.0.1:$((BASE_PORT + 1))"
    P2="127.0.0.1:$((BASE_PORT + 2))"
    echo "=== booting 3 replicas on $P0 $P1 $P2 (transport: $TRANSPORT) ==="
    "$REPLICAD" --id 0 --listen "$P0" --peers "$P1,$P2" --transport "$TRANSPORT" & pids+=($!)
    "$REPLICAD" --id 1 --listen "$P1" --peers "$P0,$P2" --transport "$TRANSPORT" & pids+=($!)
    "$REPLICAD" --id 2 --listen "$P2" --peers "$P0,$P1" --transport "$TRANSPORT" & pids+=($!)
    for i in $(seq 0 49); do
        alive=1
        for pid in "${pids[@]}"; do
            kill -0 "$pid" 2>/dev/null || alive=0
        done
        if [ "$alive" = 0 ]; then
            return 1
        fi
        if ! port_free "$BASE_PORT" && ! port_free $((BASE_PORT + 1)) \
            && ! port_free $((BASE_PORT + 2)); then
            return 0
        fi
        sleep 0.1
    done
    echo "replicas did not become ready within 5s" >&2
    return 1
}

booted=0
for attempt in 1 2 3; do
    pick_base
    if boot_cluster; then
        booted=1
        break
    fi
    echo "boot attempt $attempt lost a port race; retrying on a fresh base" >&2
    cleanup
    pids=()
    # A pinned base has nowhere else to go — fail loudly instead of
    # fighting the squatter.
    if [ -n "${ICG_DEMO_PORT:-}" ]; then
        echo "ICG_DEMO_PORT=$ICG_DEMO_PORT is in use" >&2
        exit 1
    fi
done
if [ "$booted" = 0 ]; then
    echo "could not boot the cluster after 3 attempts" >&2
    exit 1
fi

echo "=== closed-loop ICG load ($CLIENTS clients x $OPS ops, zipfian over $KEYS keys) ==="
"$LOADGEN" --replicas "$P0,$P1,$P2" --transport "$TRANSPORT" \
    --clients "$CLIENTS" --ops "$OPS" --keys "$KEYS" --write-ratio 0.1

if [ "$QUICK" = 0 ]; then
    echo "=== same load, confirmation optimization (*CC) on ==="
    "$LOADGEN" --replicas "$P0,$P1,$P2" --no-preload --transport "$TRANSPORT" \
        --clients "$CLIENTS" --ops "$OPS" --keys "$KEYS" --write-ratio 0.1 --confirm

    echo "=== single-level baselines (weak-only, strong-only reads) ==="
    "$LOADGEN" --replicas "$P0,$P1,$P2" --no-preload --transport "$TRANSPORT" \
        --clients "$CLIENTS" --ops "$OPS" --keys "$KEYS" --write-ratio 0.1 --mode weak
    "$LOADGEN" --replicas "$P0,$P1,$P2" --no-preload --transport "$TRANSPORT" \
        --clients "$CLIENTS" --ops "$OPS" --keys "$KEYS" --write-ratio 0.1 --mode strong
fi

if [ "$KILL" = 1 ]; then
    echo "=== crashing replica 2, rerunning against the surviving quorum ==="
    kill -9 "${pids[2]}" 2>/dev/null || true
    # Clients may lose in-flight replies when connections die; allow a
    # handful of failures, require the rest to complete at R=2 of the
    # two survivors.
    "$LOADGEN" --replicas "$P0,$P1" --no-preload --transport "$TRANSPORT" \
        --clients "$CLIENTS" --ops "$OPS" --keys "$KEYS" --write-ratio 0.1 \
        --allow-failures 10
fi

echo "=== cluster demo passed ==="
