#!/usr/bin/env bash
# Boots a 3-replica quorum store on loopback TCP and drives it with
# icg-loadgen; exits green iff every operation completed. This is the
# one-command proof that the deployment layer serves real traffic —
# CI's net-smoke step runs it with --quick.
#
# Usage: scripts/cluster_demo.sh [--quick] [--kill]
#   --quick   abbreviated run (CI): fewer clients/ops, skips the ICG
#             latency-comparison pass
#   --kill    crash one replica mid-demo and run a second loadgen pass
#             against the surviving quorum (R=2 of 3 stays available)
#
# Ports: three consecutive ports starting at ICG_DEMO_PORT (default
# 47611). Override if they clash: ICG_DEMO_PORT=5000 scripts/cluster_demo.sh
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
KILL=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        --kill) KILL=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

BASE_PORT="${ICG_DEMO_PORT:-47611}"
P0="127.0.0.1:$BASE_PORT"
P1="127.0.0.1:$((BASE_PORT + 1))"
P2="127.0.0.1:$((BASE_PORT + 2))"

if [ "$QUICK" = 1 ]; then
    CLIENTS=2 OPS=300 KEYS=200
else
    CLIENTS=4 OPS=2000 KEYS=1000
fi

echo "=== building (release) ==="
cargo build --release -q -p icg_apps

REPLICAD=target/release/icg-replicad
LOADGEN=target/release/icg-loadgen

pids=()
cleanup() {
    for pid in "${pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
}
trap cleanup EXIT

echo "=== booting 3 replicas on $P0 $P1 $P2 ==="
"$REPLICAD" --id 0 --listen "$P0" --peers "$P1,$P2" & pids+=($!)
"$REPLICAD" --id 1 --listen "$P1" --peers "$P0,$P2" & pids+=($!)
"$REPLICAD" --id 2 --listen "$P2" --peers "$P0,$P1" & pids+=($!)
# loadgen retries its initial dial for up to 10 s, so no sleep-and-hope
# is needed; the replicas come up in milliseconds.

echo "=== closed-loop ICG load ($CLIENTS clients x $OPS ops, zipfian over $KEYS keys) ==="
"$LOADGEN" --replicas "$P0,$P1,$P2" \
    --clients "$CLIENTS" --ops "$OPS" --keys "$KEYS" --write-ratio 0.1

if [ "$QUICK" = 0 ]; then
    echo "=== same load, confirmation optimization (*CC) on ==="
    "$LOADGEN" --replicas "$P0,$P1,$P2" --no-preload \
        --clients "$CLIENTS" --ops "$OPS" --keys "$KEYS" --write-ratio 0.1 --confirm

    echo "=== single-level baselines (weak-only, strong-only reads) ==="
    "$LOADGEN" --replicas "$P0,$P1,$P2" --no-preload \
        --clients "$CLIENTS" --ops "$OPS" --keys "$KEYS" --write-ratio 0.1 --mode weak
    "$LOADGEN" --replicas "$P0,$P1,$P2" --no-preload \
        --clients "$CLIENTS" --ops "$OPS" --keys "$KEYS" --write-ratio 0.1 --mode strong
fi

if [ "$KILL" = 1 ]; then
    echo "=== crashing replica 2, rerunning against the surviving quorum ==="
    kill -9 "${pids[2]}" 2>/dev/null || true
    # Clients may lose in-flight replies when connections die; allow a
    # handful of failures, require the rest to complete at R=2 of the
    # two survivors.
    "$LOADGEN" --replicas "$P0,$P1" --no-preload \
        --clients "$CLIENTS" --ops "$OPS" --keys "$KEYS" --write-ratio 0.1 \
        --allow-failures 10
fi

echo "=== cluster demo passed ==="
