#!/usr/bin/env bash
# Socket-level benchmark leg: boots a 3-replica reactor cluster on
# loopback, drives it with icg-loadgen in both loop modes, and merges
# the perf-gate JSONL records into a trajectory file next to the
# microbenchmark suites.
#
# Usage: scripts/bench_net.sh [out.json]
#   out.json defaults to BENCH_PR8.json in the repository root.
#
# Legs (benchmark names are fixed so `perf_gate compare` can gate them):
#   net/closed-4c/*    closed loop, 4 clients       (throughput as ns-per-op)
#   net/open-2000c/*   open loop, 2000 connections  (latency under fan-in)
# With ICG_NET_SOAK=1 a third leg runs 10,000 connections for the
# connection-scaling record (net/open-10000c/*); it is committed in the
# baseline for the trajectory but not gated — CI runners are too small
# to reproduce it stably.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR8.json}"
lines="$(pwd)/target/bench_net_lines.jsonl"

echo "=== building (release) ==="
cargo build --release -q -p icg_apps -p icg_bench

REPLICAD=target/release/icg-replicad
LOADGEN=target/release/icg-loadgen

pids=()
cleanup() {
    for pid in "${pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
}
trap cleanup EXIT

port_free() {
    ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null
}

BASE_PORT=0
for _ in $(seq 1 20); do
    c=$((20000 + RANDOM % 40000))
    if port_free "$c" && port_free $((c + 1)) && port_free $((c + 2)); then
        BASE_PORT=$c
        break
    fi
done
[ "$BASE_PORT" != 0 ] || { echo "no free ports" >&2; exit 1; }
P0="127.0.0.1:$BASE_PORT"
P1="127.0.0.1:$((BASE_PORT + 1))"
P2="127.0.0.1:$((BASE_PORT + 2))"

echo "=== booting 3 replicas on $P0 $P1 $P2 ==="
"$REPLICAD" --id 0 --listen "$P0" --peers "$P1,$P2" & pids+=($!)
"$REPLICAD" --id 1 --listen "$P1" --peers "$P0,$P2" & pids+=($!)
"$REPLICAD" --id 2 --listen "$P2" --peers "$P0,$P1" & pids+=($!)

rm -f "$lines"
mkdir -p target

echo "=== net leg: closed loop, 4 clients ==="
"$LOADGEN" --replicas "$P0,$P1,$P2" \
    --clients 4 --ops 5000 --keys 1000 --write-ratio 0.1 \
    --bench-json "$lines" --bench-name closed-4c

echo "=== net leg: open loop, 2000 connections ==="
"$LOADGEN" --replicas "$P0,$P1,$P2" --no-preload \
    --open-loop --connections 2000 --rate 8000 --duration-secs 10 \
    --keys 1000 --write-ratio 0.1 --timeout-ms 5000 \
    --bench-json "$lines" --bench-name open-2000c

if [ "${ICG_NET_SOAK:-0}" = 1 ]; then
    echo "=== net leg: open loop, 10000 connections (soak) ==="
    "$LOADGEN" --replicas "$P0,$P1,$P2" --no-preload \
        --open-loop --connections 10000 --rate 15000 --duration-secs 20 \
        --keys 1000 --write-ratio 0.1 --timeout-ms 5000 \
        --bench-json "$lines" --bench-name open-10000c
fi

cargo run --release -q -p icg_bench --bin perf_gate -- merge "$lines" "$out"
