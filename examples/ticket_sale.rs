//! The ticket-selling case study (Listing 5, §4.3/§6.3.2).
//!
//! Sells a small stock of tickets through `invoke(dequeue)` on the
//! replicated queue: purchases confirm on the fast preliminary while the
//! stock is above the threshold, and wait for the atomic final view for
//! the last few tickets. No overselling, ever.
//!
//! Run with `cargo run --example ticket_sale`.

use icg::apps::{Purchase, TicketOffice};
use icg::consensusq::{ServerConfig, SimQueue};

fn main() {
    // Servers in FRK/IRL/VRG, leader in IRL; the retail client sits in
    // FRK next to its follower — the paper's §6.3.2 placement.
    let queue = SimQueue::ec2(ServerConfig::default(), "IRL", "FRK", "FRK", 99);
    let stock = 40;
    queue.prefill(stock, 20);
    let office = TicketOffice::new(queue);

    println!(
        "selling {stock} tickets (threshold {}):\n",
        office.threshold
    );
    let mut fast = 0;
    let mut slow = 0;
    for n in 1.. {
        let t0 = office.queue().timings().len();
        let p = office.purchase_ticket();
        office.queue().settle();
        let timing = office.queue().timings().get(t0).copied();
        match p.final_view().expect("purchase resolves").value {
            Purchase::Confirmed { via_prelim, ticket } => {
                let (path, ms) = match (via_prelim, timing) {
                    (true, Some(t)) => ("fast path (preliminary)", t.prelim_ms.unwrap_or(0.0)),
                    (_, Some(t)) => ("atomic path (final)", t.final_ms),
                    _ => ("?", 0.0),
                };
                if via_prelim {
                    fast += 1;
                } else {
                    slow += 1;
                }
                println!(
                    "purchase #{n:>2}: {} in {ms:>6.2} virtual ms  [{}]",
                    ticket.unwrap_or_default(),
                    path
                );
            }
            Purchase::SoldOut => {
                println!("purchase #{n:>2}: Sold out. Sorry!");
                break;
            }
        }
    }
    println!("\n{fast} purchases took the fast path, {slow} waited for atomic dequeues.");
    assert_eq!(
        fast + slow,
        stock as usize,
        "every ticket sold exactly once"
    );
}
