//! Quickstart: the Correctables API on a real threaded store.
//!
//! Demonstrates the three invocation methods of the paper (§3.2) against
//! the in-process primary-backup cluster, with actual OS threads and
//! wall-clock delays:
//!
//! - `invoke_weak`  — fast, possibly stale;
//! - `invoke_strong` — slow, correct;
//! - `invoke`       — both, incrementally (ICG).
//!
//! Run with `cargo run --example quickstart`.

use std::time::{Duration, Instant};

use icg::correctables::local::{Delays, LocalCluster, LocalOp};
use icg::correctables::{Client, ConsistencyLevel};

fn main() {
    let cluster = LocalCluster::new(Delays::default());
    cluster.seed("greeting", "hello from the backup");
    let client = Client::new(cluster.binding());

    println!("levels offered: {:?}\n", client.consistency_levels());

    // --- invoke_weak: one fast view -------------------------------------
    let t0 = Instant::now();
    let weak = client
        .invoke_weak(LocalOp::Get("greeting".into()))
        .wait_final(Duration::from_secs(5))
        .expect("weak read");
    println!(
        "invoke_weak   -> {:?} ({}) after {:?}",
        weak.value,
        weak.level,
        t0.elapsed()
    );

    // --- invoke_strong: one slow, correct view --------------------------
    let t0 = Instant::now();
    let strong = client
        .invoke_strong(LocalOp::Get("greeting".into()))
        .wait_final(Duration::from_secs(5))
        .expect("strong read");
    println!(
        "invoke_strong -> {:?} ({}) after {:?}",
        strong.value,
        strong.level,
        t0.elapsed()
    );

    // --- invoke: incremental consistency guarantees ---------------------
    // Write, then immediately read with ICG: the preliminary view comes
    // from the (not yet converged) backup, the final view from the primary.
    client
        .invoke_strong(LocalOp::Put("greeting".into(), "fresh value".into()))
        .wait_final(Duration::from_secs(5))
        .expect("write");

    let t0 = Instant::now();
    let c = client.invoke(LocalOp::Get("greeting".into()));
    c.on_update(move |view| {
        println!(
            "invoke        -> preliminary {:?} ({}) after {:?}",
            view.value,
            view.level,
            t0.elapsed()
        );
    });
    let fin = c.wait_final(Duration::from_secs(5)).expect("icg read");
    println!(
        "invoke        -> final       {:?} ({}) after {:?}",
        fin.value,
        fin.level,
        t0.elapsed()
    );
    assert_eq!(fin.level, ConsistencyLevel::STRONG);
    assert_eq!(fin.value.as_deref(), Some("fresh value"));

    // --- speculate: Listing 3 of the paper -------------------------------
    // Chase a pointer speculatively: read a reference weakly, prefetch the
    // target, confirm when the strong view arrives.
    cluster.seed("ref", "target");
    cluster.seed("target", "the payload behind the reference");
    let chased = client.invoke(LocalOp::Get("ref".into()));
    let cluster2 = cluster.clone();
    let t0 = Instant::now();
    let out = chased.speculate_async(
        move |r: &Option<String>| {
            let key = r.clone().unwrap_or_default();
            Client::new(cluster2.binding()).invoke_strong(LocalOp::Get(key))
        },
        |_| {},
    );
    let v = out.wait_final(Duration::from_secs(5)).expect("speculation");
    println!(
        "\nspeculate     -> {:?} after {:?} (prefetch overlapped the strong read)",
        v.value,
        t0.elapsed()
    );
}
