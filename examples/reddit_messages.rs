//! Decoupling applications from storage (Listings 1–2 of the paper).
//!
//! Reddit's `user_messages` manually juggles a cache and the backend:
//! check the cache, fall back to the backend, write back for coherence,
//! and keep a duplicate `..._nocache` function for strong reads. With
//! Correctables the same two behaviours are one-liners over a binding
//! that owns coherence — this example is Listing 2 running for real.
//!
//! Run with `cargo run --example reddit_messages`.

use icg::causalstore::{CacheOp, Item, SimCausal};
use icg::correctables::{Client, Correctable};

/// Listing 2, verbatim: the whole "Reddit" data layer.
fn user_messages(
    client: &Client<icg::causalstore::CausalBinding>,
    user_id: u64,
    strong: bool,
) -> Correctable<Option<Item>> {
    let key = format!("messages:{user_id}");
    if strong {
        client.invoke_strong(CacheOp::Get(key))
    } else {
        client.invoke_weak(CacheOp::Get(key))
    }
}

fn main() {
    let store = SimCausal::ec2("VRG", "IRL", 8);
    let client = Client::new(store.binding());

    // A user's inbox exists on the replicas but not in the local cache.
    store.seed_remote_only("messages:42", 3, vec![101, 102, 103]);

    // Weak read: straight from the (cold) cache — instant, possibly empty.
    let weak = user_messages(&client, 42, false);
    store.settle();
    println!(
        "weak read (cache):   {:?}",
        weak.final_view().unwrap().value.map(|i| i.items)
    );

    // Strong read: bypasses the cache, hits the primary, and — unlike the
    // hand-rolled Reddit code — coherence is handled by the binding: the
    // cache is refreshed as a side effect.
    let strong = user_messages(&client, 42, true);
    store.settle();
    println!(
        "strong read (primary): {:?}",
        strong.final_view().unwrap().value.map(|i| i.items)
    );

    // The cache is now warm; weak reads see the messages with zero latency.
    let warm = user_messages(&client, 42, false);
    store.settle();
    println!(
        "weak read again:     {:?}  (cache kept coherent by the binding)",
        warm.final_view().unwrap().value.map(|i| i.items)
    );

    // Writes are write-through; no manual `g.permacache.set` anywhere.
    client.invoke_strong(CacheOp::Put("messages:42".into(), vec![101, 102, 103, 104]));
    store.settle();
    let after = user_messages(&client, 42, false);
    store.settle();
    println!(
        "after new message:   {:?}",
        after.final_view().unwrap().value.map(|i| i.items)
    );
}
