//! The consistency-oracle explorer as a CLI.
//!
//! Runs seeded fault-schedule explorations over the simulated stacks
//! and reports per-stack coverage; any violation prints its minimal
//! reproducible `(seed, schedule)` pair and exits non-zero.
//!
//! ```text
//! cargo run --release --example oracle_explore [STACK] [SEEDS]
//! ```
//!
//! `STACK` is one of `store`, `store+confirm`, `queue`, `causal`,
//! `sharded`, `buggy`, or `all` (default); `SEEDS` is the number of
//! seeds per stack (default 8). `buggy` runs the deliberately broken
//! binding and *expects* a violation — a live demo of the failure
//! report and replay.

use std::time::Instant;

use icg::oracle::{explore, replay, ExplorerConfig, StackKind};

fn stacks_named(name: &str) -> Vec<StackKind> {
    match name {
        "store" => vec![StackKind::Store { confirm: false }],
        "store+confirm" => vec![StackKind::Store { confirm: true }],
        "queue" => vec![StackKind::Queue],
        "causal" => vec![StackKind::Causal],
        "sharded" => vec![StackKind::ShardedStore { shards: 2 }],
        "buggy" => vec![StackKind::BuggyMem],
        "all" => vec![
            StackKind::Store { confirm: false },
            StackKind::Store { confirm: true },
            StackKind::Queue,
            StackKind::Causal,
            StackKind::ShardedStore { shards: 2 },
        ],
        other => {
            eprintln!(
                "unknown stack `{other}`; use store|store+confirm|queue|causal|sharded|buggy|all"
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let stack_arg = args.next().unwrap_or_else(|| "all".to_string());
    let seeds: u64 = args
        .next()
        .map(|s| s.parse().expect("SEEDS must be a number"))
        .unwrap_or(8);
    let cfg = ExplorerConfig::default();

    let expect_failure = stack_arg == "buggy";
    let mut violated = false;

    for stack in stacks_named(&stack_arg) {
        let t0 = Instant::now();
        let (mut invocations, mut crashed, mut lin) = (0usize, 0usize, 0usize);
        for seed in 0..seeds {
            match explore(stack, seed, &cfg) {
                Ok(s) => {
                    invocations += s.invocations;
                    crashed += s.crashed;
                    lin += s.lin_entries;
                }
                Err(report) => {
                    violated = true;
                    println!("{report}\n");
                    // Demonstrate that the printed pair really replays.
                    let replayed = replay(stack, report.seed, &report.schedule, &cfg);
                    match replayed {
                        Err(r) if r.violations == report.violations => {
                            println!("replay confirmed: identical violations reproduced\n")
                        }
                        _ => println!("replay DIVERGED — this would be a determinism bug\n"),
                    }
                }
            }
        }
        println!(
            "{stack:<18} {seeds} seeds: {invocations} invocations ({crashed} crashed under \
             faults), {lin} ops linearizability-checked, {:?}",
            t0.elapsed()
        );
    }

    if violated != expect_failure {
        if expect_failure {
            eprintln!("expected the buggy stack to be rejected, but it passed!");
        }
        std::process::exit(1);
    }
}
