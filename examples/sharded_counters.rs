//! Sharded counters: the `icg-shard` routing layer end to end.
//!
//! Builds an 8-shard in-memory counter store behind one sharded binding,
//! pushes a batched increment workload through the per-shard pipeline
//! workers, reads counters back with a scatter (multi-get) whose merged
//! Correctable carries weakest-common-level semantics, and prints the
//! rebalance plan for growing the fleet to 9 shards.
//!
//! Run with `cargo run --release --example sharded_counters`.

use std::time::Instant;

use icg::correctables::{Client, KeyedOp, LevelSelection};
use icg::shard::{KvOp, MemBinding, PipelineConfig, RebalancePlan, ShardId, ShardedBinding};

const SHARDS: usize = 8;
const COUNTERS: u64 = 256;
const INCREMENTS: u64 = 100_000;
const BATCH: usize = 64;

fn main() {
    let router = ShardedBinding::pipelined(
        (0..SHARDS).map(|_| MemBinding::default()).collect(),
        64,
        42,
        PipelineConfig::default(),
    );
    println!(
        "sharded counter store: {SHARDS} shards x {} vnodes, levels {:?}\n",
        router.ring().vnodes(),
        Client::new(router.clone()).consistency_levels()
    );

    // --- batched increments through the pipeline ------------------------
    let t0 = Instant::now();
    let mut submitted = 0u64;
    let mut last = Vec::new();
    while submitted < INCREMENTS {
        let n = (INCREMENTS - submitted).min(BATCH as u64);
        let ops: Vec<KvOp> = (0..n)
            .map(|i| KvOp::Add((submitted + i) % COUNTERS, 1))
            .collect();
        last = router.invoke_batch(ops, &LevelSelection::All);
        submitted += n;
    }
    router.quiesce();
    let elapsed = t0.elapsed();
    assert!(last.iter().all(|c| c.final_view().is_some()));
    println!(
        "{INCREMENTS} increments over {COUNTERS} counters in {elapsed:?} \
         ({:.0} ops/s through the batching pipeline)",
        INCREMENTS as f64 / elapsed.as_secs_f64()
    );
    let routed = router.routed_per_shard();
    println!("ops per shard: {routed:?}\n");

    // --- scatter: one logical multi-get across every shard --------------
    let keys: Vec<u64> = (0..10).collect();
    let c = router.scatter(keys.iter().map(|&k| KvOp::Get(k)).collect());
    c.on_update(|v| {
        println!(
            "scatter preliminary at `{}`: every shard has answered at least weakly",
            v.level
        )
    });
    router.quiesce();
    let fin = c.final_view().expect("scatter closed");
    println!(
        "scatter final at `{}` (all shards delivered their strongest view):",
        fin.level
    );
    for (k, v) in keys.iter().zip(&fin.value) {
        println!("  counter {k:2} = {v}");
    }
    for (&k, &v) in keys.iter().zip(&fin.value) {
        let expect = INCREMENTS / COUNTERS + u64::from(k < INCREMENTS % COUNTERS);
        assert_eq!(v, expect, "counter {k}");
    }

    // --- rebalance plan for growing the fleet ---------------------------
    let grown = router.ring().with_added(ShardId(SHARDS as u32));
    let plan = RebalancePlan::diff(router.ring(), &grown);
    let moved_keys = (0..COUNTERS)
        .filter(|&k| plan.moves_key(router.ring(), KvOp::Get(k).object_id()))
        .count();
    println!(
        "\nadding shard {SHARDS}: {} ranges move, {:.1}% of the keyspace \
         ({moved_keys}/{COUNTERS} live counters), all to the new shard",
        plan.moved.len(),
        100.0 * plan.moved_fraction()
    );
    assert!(plan.moved.iter().all(|r| r.to == ShardId(SHARDS as u32)));
    assert!(plan.moved_fraction() <= 2.0 / (SHARDS as f64 + 1.0));
}
