//! The ad-serving case study (Listing 4, §6.3.1) on the simulated
//! FRK/IRL/VRG deployment.
//!
//! One `fetchAdsByUserId` with and without ICG speculation, with the
//! virtual-time breakdown printed, followed by a small batch comparing
//! average latencies.
//!
//! Run with `cargo run --example ad_serving`.

use icg::apps::{AdSystem, AdsDataset};
use icg::quorumstore::{ReplicaConfig, SimStore};

fn build(seed: u64) -> AdSystem {
    // Client in IRL, coordinator FRK, replicas FRK/IRL/VRG — §6.1's setup.
    let store = SimStore::ec2(ReplicaConfig::default(), 2, false, "IRL", 0, seed);
    AdSystem::new(store, AdsDataset::small(), seed)
}

fn one_fetch(icg: bool) -> (usize, f64) {
    let sys = build(7);
    let c = sys.fetch_ads_by_user_id(42, icg);
    sys.store().settle();
    let ads = c.final_view().expect("fetch completes").value;
    (ads.len(), sys.store().now_ms())
}

fn main() {
    println!("-- one fetchAdsByUserId(42) --");
    let (n_base, t_base) = one_fetch(false);
    println!("baseline (strong refs, then fetch): {n_base} ads in {t_base:.1} virtual ms");
    let (n_icg, t_icg) = one_fetch(true);
    println!("ICG (speculative prefetch):         {n_icg} ads in {t_icg:.1} virtual ms");
    println!(
        "speculation hid {:.1} ms ({:.0}%)\n",
        t_base - t_icg,
        (1.0 - t_icg / t_base) * 100.0
    );

    println!("-- batch of 50 users, same comparison --");
    for icg in [false, true] {
        let sys = build(11);
        let t0 = sys.store().now_ms();
        let mut total = 0usize;
        for uid in 0..50 {
            let c = sys.fetch_ads_by_user_id(uid, icg);
            sys.store().settle();
            total += c.final_view().expect("completes").value.len();
        }
        let elapsed = sys.store().now_ms() - t0;
        println!(
            "{:<28} {total:>4} ads, {:>8.1} virtual ms total, {:>6.1} ms/fetch",
            if icg {
                "ICG (speculate)"
            } else {
                "baseline (no speculation)"
            },
            elapsed,
            elapsed / 50.0
        );
    }
    println!("\ndivergence is rare at this scale, so speculation almost always confirms.");
}
