//! Blockchain confirmations as incremental views (§4.5 of the paper).
//!
//! A wallet submits a payment and receives six progressively stronger
//! views — one per confirmation depth — through a single `invoke`. This is
//! the paper's showcase for *many* preliminary views: finality takes tens
//! of virtual minutes, and users want a sense of progress throughout.
//!
//! Run with `cargo run --example bitcoin_watch`.

use icg::blockchain::{SimChain, TxStatus, FINAL_DEPTH};
use icg::correctables::Client;
use icg::simnet::SimDuration;

fn main() {
    // Three mining regions, ~1 block per virtual minute overall.
    let chain = SimChain::ec2(SimDuration::from_secs(60), "IRL", 42);
    let client = Client::new(chain.binding());
    println!(
        "wallet levels: {:?}\n",
        client
            .consistency_levels()
            .iter()
            .map(|l| l.name())
            .collect::<Vec<_>>()
    );

    println!("submitting payment tx#1001 ...");
    let payment = client.invoke(1001u64);
    payment.on_update(|view| {
        let TxStatus { confirmations, .. } = view.value;
        println!(
            "  [{}] {} confirmation{} — {}",
            view.level,
            confirmations,
            if confirmations == 1 { "" } else { "s" },
            match confirmations {
                1 => "in a block; could still be reorged away",
                2..=3 => "getting safer; small purchases OK",
                _ => "deep; large payments can rely on it soon",
            }
        );
    });
    payment.on_final(|view| {
        println!(
            "  [{}] {} confirmations — irreversible for all practical purposes",
            view.level, view.value.confirmations
        );
    });

    // Let the network mine for two virtual hours.
    chain.run_for(SimDuration::from_secs(2 * 3600));

    let timelines = chain.timelines();
    if let Some(t) = timelines.first() {
        println!("\nconfirmation timeline (virtual minutes after submission):");
        for (depth, ms) in &t.confirmations_ms {
            println!("  depth {depth}: {:>6.1} min", ms / 60_000.0);
        }
    }
    println!(
        "\nchain height {} with {} reorgs along the way — views below conf-{FINAL_DEPTH} \
         are genuinely preliminary.",
        chain.height(),
        chain.total_reorgs()
    );
}
