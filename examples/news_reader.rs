//! The smartphone news reader (Listing 6, §4.4): progressive display over
//! three consistency levels.
//!
//! One logical `invoke(getLatestNews())` refreshes the screen three times:
//! instantly from the local cache, then from the nearest (causal) backup,
//! and finally from the distant primary with the freshest stories.
//!
//! Run with `cargo run --example news_reader`.

use icg::apps::{NewsReader, LATEST};
use icg::causalstore::SimCausal;
use icg::simnet::SimDuration;

fn headline(id: u64) -> &'static str {
    match id {
        1 => "Replication considered helpful",
        2 => "Quorums: how many replicas is enough?",
        3 => "Promises generalized to many views",
        99 => "BREAKING: preliminary results arrive early",
        _ => "(unknown story)",
    }
}

fn main() {
    // Primary in VRG, reader (and cache) in IRL, nearest backup local.
    let store = SimCausal::ec2("VRG", "IRL", 5);
    store.seed(LATEST, 1, vec![1, 2]);

    // Breaking news lands at the primary moments before we open the app;
    // the backup has not heard yet, the cache is older still.
    store.publish(LATEST, vec![1, 2, 3, 99]);
    store.advance(SimDuration::from_millis(3));

    let reader = NewsReader::new(store);
    println!("opening the news app (one invoke, three views)...\n");
    reader.get_latest_news();
    reader.store().settle();

    for (i, refresh) in reader.display.lock().iter().enumerate() {
        println!("refresh #{} [{} view]:", i + 1, refresh.level);
        if refresh.items.is_empty() {
            println!("   (nothing cached yet)");
        }
        for id in &refresh.items {
            println!("   - {}", headline(*id));
        }
        println!();
    }
    let timings = reader.store().timings();
    let t = &timings[0];
    println!("view arrival times (virtual ms after tap): {:?}", t.views);
    println!("\nthe display got usable content immediately and the scoop when it arrived.");
}
