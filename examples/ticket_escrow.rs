//! The escrow-segmented ticket seller (segmented invariant confluence).
//!
//! Sells the same stock twice over the same FRK/IRL/VRG deployment:
//!
//! 1. **escrow mode** — the stock is split into per-replica segments and
//!    the local replica sells from its own segment coordination-free;
//!    only segment exhaustion pays a WAN transfer round;
//! 2. **strong-only mode** — every sale runs a transfer round, the
//!    price a coordination-per-buy design pays.
//!
//! Latency is measured in *virtual* time: the purchase submits, then the
//! simulation advances millisecond by millisecond until the purchase
//! confirms. No overselling in either mode.
//!
//! Run with `cargo run --example ticket_escrow`.

use icg::apps::{EscrowOffice, Purchase};
use icg::crdt::SimEscrow;
use icg::simnet::SimDuration;

const STOCK: u64 = 30;

/// Sells the full stock, returning per-purchase confirm latencies in
/// virtual ms (and asserting the stock sells exactly once).
fn sell_out(office: &EscrowOffice) -> Vec<u64> {
    let mut latencies = Vec::new();
    let mut confirmed = 0u64;
    loop {
        let t0 = office.store().now();
        let p = office.purchase_ticket();
        // Step virtual time only until the purchase resolves: a fast
        // sale confirms on the weak view long before the background
        // strong confirmation settles.
        while p.final_view().is_none() && p.error().is_none() {
            office.store().step(SimDuration::from_millis(1));
        }
        let elapsed_ms = (office.store().now() - t0).as_millis_f64() as u64;
        match p.final_view().expect("purchase resolves").value {
            Purchase::Confirmed { .. } => {
                confirmed += 1;
                latencies.push(elapsed_ms);
            }
            Purchase::SoldOut => break,
        }
    }
    // Drain the background confirmations before the caller reuses the
    // deployment's numbers.
    office.store().settle();
    office.store().advance(SimDuration::from_secs(5));
    assert_eq!(confirmed, STOCK, "every ticket sold exactly once");
    latencies
}

fn stats(lat: &[u64]) -> (f64, u64, u64) {
    let mean = lat.iter().sum::<u64>() as f64 / lat.len() as f64;
    let max = *lat.iter().max().unwrap_or(&0);
    (mean, lat.iter().sum::<u64>(), max)
}

fn main() {
    // Even split across the three replicas; retail clients buy at FRK,
    // whose replica owns a segment — the common colocated deployment.
    let per = STOCK / 3;
    let allocs = vec![per, per, STOCK - 2 * per];

    let escrow = SimEscrow::ec2(allocs.clone(), "FRK", 42, false);
    escrow.set_local_origin(true);
    let escrow_office = EscrowOffice::new(escrow);
    let escrow_lat = sell_out(&escrow_office);

    let strong = SimEscrow::ec2(allocs, "FRK", 42, true);
    strong.set_local_origin(true);
    let strong_office = EscrowOffice::new(strong);
    let strong_lat = sell_out(&strong_office);

    let (e_mean, e_total, e_max) = stats(&escrow_lat);
    let (s_mean, s_total, s_max) = stats(&strong_lat);
    println!("selling {STOCK} tickets per mode, client at FRK:\n");
    println!(
        "escrow mode:      mean {e_mean:>7.2} virtual ms/purchase   (max {e_max:>4} ms, \
         {e_total:>5} ms total)"
    );
    println!(
        "strong-only mode: mean {s_mean:>7.2} virtual ms/purchase   (max {s_max:>4} ms, \
         {s_total:>5} ms total)"
    );
    let speedup = s_mean / e_mean.max(0.01);
    println!("\nescrow fast path is {speedup:.1}x faster per purchase on average");
    let fast = escrow_lat.iter().filter(|&&ms| ms <= 5).count();
    println!(
        "{fast}/{} escrow purchases confirmed from the local segment within 5 virtual ms",
        escrow_lat.len()
    );
    assert!(
        speedup >= 5.0,
        "escrow path must be at least 5x faster (got {speedup:.1}x)"
    );
}
